"""The provenance normal form of Theorem 5.3 as an explicit state machine.

Theorem 5.3 shows that the provenance of every tuple after applying an
annotated transaction ``T^p`` to an ``X``-database can be rewritten into one
of five shapes (``a`` is the tuple's pre-transaction annotation, ``b_i``
source annotations, ``p`` the transaction annotation)::

    (1) a
    (2) a +I p
    (3) a -  p
    (4) a +M ((b_0 + ... + b_n) *M p)
    (5) (a - p) +M ((b_0 + ... + b_n) *M p)

:class:`NormalForm` represents exactly these shapes (``UNTOUCHED``, ``INS``,
``DEL``, ``MOD``, ``DELMOD``) and its transition methods implement the
rewrite rules of Figure 6 in O(1) time per update, which is how the paper's
"Normal form" configuration computes provenance *on-the-fly during query
evaluation* instead of first materializing the exponentially large naive
expression:

* insertion (Rule 1, via axioms 9/10): any shape collapses to ``INS(a)``;
* deletion (Rule 2, via axioms 2/4/7): any shape collapses to ``DEL(a)``;
* a modification source contributes (Rules 3/4/7/8): nothing if it was
  deleted by this very annotation, an *insertion marker* if it was inserted
  by it, its flattened sources if it was itself modified;
* a modification target absorbs contributions (Rules 5/6): an inserted
  tuple absorbs them, otherwise they are appended to the source disjunction.

Sequences of transactions carry *different* annotations; when a tuple in a
shape for annotation ``p`` is touched by a query annotated ``p' != p`` the
shape first *collapses* to ``UNTOUCHED`` with the whole current expression
as the new opaque base — this is what produces the nested expressions of the
paper's Figure 4 and keeps the total size linear in ``|D| + |T|``.
"""

from __future__ import annotations

import enum
from typing import Iterable

from .expr import Expr, ZERO, minus, plus_i, plus_m, ssum, times_m

__all__ = ["Shape", "NormalForm", "Contribution"]


class Shape(enum.Enum):
    """The five normal-form shapes of Theorem 5.3."""

    UNTOUCHED = "untouched"
    INS = "ins"
    DEL = "del"
    MOD = "mod"
    DELMOD = "delmod"


class Contribution:
    """What a modification source passes to its target.

    ``sources`` is the (deduplicated, order-preserving) tuple of expressions
    entering the target's source disjunction; ``inserted`` records that some
    source was freshly inserted *by the same annotation*, in which case the
    target becomes an insertion outright (Rule 4).
    """

    __slots__ = ("sources", "inserted")

    def __init__(self, sources: tuple[Expr, ...] = (), inserted: bool = False):
        self.sources = sources
        self.inserted = inserted

    def merge(self, other: "Contribution") -> "Contribution":
        """Combine contributions of several sources mapping to one target."""
        return Contribution(
            tuple(dict.fromkeys(self.sources + other.sources)),
            self.inserted or other.inserted,
        )

    def expr_refs(self) -> tuple[Expr, ...]:
        """Embedded expressions (intern-sweep root traversal)."""
        return self.sources

    @property
    def is_empty(self) -> bool:
        return not self.sources and not self.inserted

    def __repr__(self) -> str:
        return f"Contribution(sources={list(map(str, self.sources))}, inserted={self.inserted})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Contribution):
            return NotImplemented
        return self.inserted == other.inserted and set(self.sources) == set(other.sources)

    def __hash__(self) -> int:
        return hash((self.inserted, frozenset(self.sources)))


class NormalForm:
    """A tuple's provenance in one of the five Theorem 5.3 shapes.

    Instances are immutable; transitions return new objects.  ``base`` is
    the opaque pre-transaction annotation (shape 1's whole content),
    ``sources`` the ``b_i`` of shapes 4/5 and ``p`` the annotation variable
    of shapes 2-5 (``None`` for shape 1).
    """

    __slots__ = ("shape", "base", "sources", "p")

    def __init__(
        self,
        shape: Shape,
        base: Expr,
        sources: tuple[Expr, ...] = (),
        p: Expr | None = None,
    ):
        if shape is not Shape.UNTOUCHED:
            if p is None or not p.is_var:
                raise ValueError(f"shape {shape.value} requires a variable annotation, got {p!r}")
        elif p is not None:
            raise ValueError("UNTOUCHED carries no annotation")
        if shape not in (Shape.MOD, Shape.DELMOD) and sources:
            raise ValueError(f"shape {shape.value} carries no sources")
        self.shape = shape
        self.base = base
        self.sources = sources
        self.p = p

    def expr_refs(self) -> tuple[Expr, ...]:
        """Embedded expressions (intern-sweep root traversal)."""
        if self.p is None:
            return (self.base,) + self.sources
        return (self.base, self.p) + self.sources

    # -- construction -------------------------------------------------------

    @classmethod
    def untouched(cls, expr: Expr) -> "NormalForm":
        """Shape (1): a tuple whose annotation is ``expr`` (possibly ``0``)."""
        return cls(Shape.UNTOUCHED, expr)

    @classmethod
    def absent(cls) -> "NormalForm":
        """A tuple that is not in the database (annotation ``0``)."""
        return cls(Shape.UNTOUCHED, ZERO)

    # -- inspection ---------------------------------------------------------

    def to_expr(self) -> Expr:
        """The UP[X] expression this shape denotes.

        The zero-related axioms are applied by the smart constructors, so
        this already performs the Proposition 5.5 post-processing: e.g. a
        ``MOD`` with base ``0`` renders as ``(b_0 + ... + b_n) *M p``.
        """
        if self.shape is Shape.UNTOUCHED:
            return self.base
        assert self.p is not None
        if self.shape is Shape.INS:
            return plus_i(self.base, self.p)
        if self.shape is Shape.DEL:
            return minus(self.base, self.p)
        contribution = times_m(ssum(self.sources), self.p)
        if self.shape is Shape.MOD:
            return plus_m(self.base, contribution)
        return plus_m(minus(self.base, self.p), contribution)

    def size(self) -> int:
        """Expanded size of the denoted expression."""
        return self.to_expr().size()

    def __repr__(self) -> str:
        return f"NormalForm({self.shape.value}: {self.to_expr()})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, NormalForm):
            return NotImplemented
        return (
            self.shape is other.shape
            and self.base is other.base
            and self.p is other.p
            and set(self.sources) == set(other.sources)
        )

    def __hash__(self) -> int:
        return hash((self.shape, self.base, self.p, frozenset(self.sources)))

    # -- transitions (Figure 6 rules) ---------------------------------------

    def _collapsed(self, p: Expr) -> "NormalForm":
        """Re-anchor on annotation ``p``.

        Shapes for a different annotation become ``UNTOUCHED`` with the full
        current expression as base — the transaction-boundary collapse that
        nests normal forms across transactions (Figure 4).
        """
        if self.shape is Shape.UNTOUCHED or self.p is p:
            return self
        return NormalForm.untouched(self.to_expr())

    def on_insert(self, p: Expr) -> "NormalForm":
        """The tuple is (re-)inserted by a query annotated ``p`` (Rule 1)."""
        nf = self._collapsed(p)
        return NormalForm(Shape.INS, nf.base, (), p)

    def on_delete(self, p: Expr) -> "NormalForm":
        """The tuple is deleted — or modified away — by ``p`` (Rule 2)."""
        nf = self._collapsed(p)
        return NormalForm(Shape.DEL, nf.base, (), p)

    def contribution(self, p: Expr) -> Contribution:
        """What this tuple passes to a modification target under ``p``.

        Pre-state semantics: call this *before* applying :meth:`on_delete`
        to the source.  Implements Rules 3 (deleted source: nothing),
        4 (inserted source: insertion marker), 7 (modified source: its base
        and flattened sources) and 8 (delete-and-modified source: flattened
        sources only; the ``(a - p)`` spine cancels against ``*M p``).
        """
        if self.shape is Shape.UNTOUCHED or self.p is not p:
            expr = self.to_expr()
            if expr.is_zero:
                return Contribution()
            return Contribution((expr,), False)
        if self.shape is Shape.INS:
            return Contribution((), True)
        if self.shape is Shape.DEL:
            return Contribution()
        if self.shape is Shape.MOD:
            srcs = (self.base,) + self.sources if not self.base.is_zero else self.sources
            return Contribution(tuple(dict.fromkeys(srcs)), False)
        # DELMOD: Rule 8 drops the (a - p) part.
        return Contribution(self.sources, False)

    def absorb(self, contribution: Contribution, p: Expr) -> "NormalForm":
        """The tuple is the target of a modification under ``p``.

        Implements Rules 4 (an inserted source turns the target into an
        insertion), 5 (an inserted target absorbs all contributions) and
        6/7 (source disjunctions of successive modifications factorize).
        """
        nf = self._collapsed(p)
        if contribution.inserted:
            return NormalForm(Shape.INS, nf.base, (), p)
        if not contribution.sources:
            return nf
        if nf.shape is Shape.UNTOUCHED:
            return NormalForm(Shape.MOD, nf.base, contribution.sources, p)
        if nf.shape is Shape.INS:
            return nf
        merged = tuple(dict.fromkeys(nf.sources + contribution.sources))
        if nf.shape is Shape.DEL or nf.shape is Shape.DELMOD:
            return NormalForm(Shape.DELMOD, nf.base, merged, p)
        return NormalForm(Shape.MOD, nf.base, merged, p)

    # -- bounds -------------------------------------------------------------

    def added_size(self) -> int:
        """Nodes this shape adds on top of its base and sources.

        Bounded by a constant plus the number of sources — the per-update
        accounting behind Theorem 5.3's linear size bound.
        """
        return self.to_expr().size() - self.base.size() - sum(s.size() for s in self.sources)


def merge_contributions(contributions: Iterable[Contribution]) -> Contribution:
    """Merge the contributions of all sources mapping to one target tuple."""
    acc = Contribution()
    for c in contributions:
        acc = acc.merge(c)
    return acc
