"""The Figure 6 rewrite rules as standalone expression rewrites.

The incremental engine applies these rules through the
:class:`~repro.core.normal_form.NormalForm` state machine; this module
exposes each rule as an explicit ``Expr -> Expr | None`` function so that

* tests can verify every single rule preserves semantics in every concrete
  Update-Structure (the rules are *implied by* the Figure 3 axioms), and
* :func:`normalize_with_rules` provides an independent, purely syntactic
  path to the Theorem 5.3 normal form, cross-checked against the replay
  normalizer of :mod:`repro.core.normalize`.

Naming follows the paper's Figure 6:

=======  ==================================================================
Rule 1   an insertion overrides previous same-annotation updates
Rule 2   a deletion overrides previous same-annotation updates
Rule 3   an update whose sources were all deleted has no effect
Rule 4   an update based on an inserted tuple is an insertion
Rule 5   an inserted target absorbs subsequent modifications
Rule 6   successive modifications of one target factorize
Rule 7   a modified source contributes its base and sources, flattened
Rule 8   a deleted source inside a source disjunction is dropped
=======  ==================================================================
"""

from __future__ import annotations

from typing import Callable, Optional

from .expr import (
    Expr,
    MINUS,
    PLUS_I,
    PLUS_M,
    SUM,
    TIMES_M,
    minus,
    plus_i,
    plus_m,
    ssum,
    times_m,
)
from .memo import ExprMemo, memoization_enabled
from .normal_form import NormalForm, Shape

__all__ = [
    "match_normal_form",
    "rule_1_insert_collapse",
    "rule_2_delete_collapse",
    "rule_3_deleted_sources",
    "rule_4_inserted_source",
    "rule_5_insert_absorbs",
    "rule_6_target_factorize",
    "rule_7_source_flatten",
    "rule_8_drop_deleted_source",
    "ALL_RULES",
    "apply_rules_once",
    "normalize_with_rules",
]

Rule = Callable[[Expr], Optional[Expr]]


def match_normal_form(expr: Expr) -> NormalForm | None:
    """Recognize the five Theorem 5.3 shapes syntactically.

    Unlike :func:`repro.core.normalize.normalize` this performs no
    rewriting: it returns ``None`` if the top of ``expr`` is not literally
    one of the five shapes.
    """
    kind = expr.kind
    if not expr.children:
        return NormalForm.untouched(expr)
    if kind == PLUS_I and expr.right.is_var:
        return NormalForm(Shape.INS, expr.left, (), expr.right)
    if kind == MINUS and expr.right.is_var:
        return NormalForm(Shape.DEL, expr.left, (), expr.right)
    if kind == PLUS_M and expr.right.kind == TIMES_M and expr.right.right.is_var:
        p = expr.right.right
        sources = _terms(expr.right.left)
        base = expr.left
        if base.kind == MINUS and base.right is p:
            return NormalForm(Shape.DELMOD, base.left, sources, p)
        return NormalForm(Shape.MOD, base, sources, p)
    if kind == TIMES_M and expr.right.is_var:
        # ``0 +M (s *M p)`` zero-folds to a bare ``s *M p`` (base-0 MOD).
        from .expr import ZERO

        return NormalForm(Shape.MOD, ZERO, _terms(expr.left), expr.right)
    return None


def _terms(expr: Expr) -> tuple[Expr, ...]:
    return expr.children if expr.kind == SUM else (expr,)


def _mod_parts(expr: Expr) -> tuple[Expr, tuple[Expr, ...], Expr] | None:
    """Split ``tau +M ((b_0 + ... + b_n) *M p)`` into (tau, terms, p).

    Also accepts the zero-folded base-0 form ``(b_0 + ... + b_n) *M p``
    (tau = 0), which the smart constructors produce for absent targets.
    """
    if expr.kind == PLUS_M and expr.right.kind == TIMES_M and expr.right.right.is_var:
        return expr.left, _terms(expr.right.left), expr.right.right
    if expr.kind == TIMES_M and expr.right.is_var:
        from .expr import ZERO

        return ZERO, _terms(expr.left), expr.right
    return None


# ---------------------------------------------------------------------------
# The eight rules
# ---------------------------------------------------------------------------


def rule_1_insert_collapse(expr: Expr) -> Expr | None:
    """``tau +I p  =>  a +I p`` where ``a`` is tau's spine base (axioms 9/10)."""
    if expr.kind != PLUS_I or not expr.right.is_var:
        return None
    p = expr.right
    nf = match_normal_form(expr.left)
    if nf is None or nf.shape is Shape.UNTOUCHED or nf.p is not p:
        return None
    return plus_i(nf.base, p)


def rule_2_delete_collapse(expr: Expr) -> Expr | None:
    """``tau - p  =>  a - p`` where ``a`` is tau's spine base (axioms 2/4/7)."""
    if expr.kind != MINUS or not expr.right.is_var:
        return None
    p = expr.right
    nf = match_normal_form(expr.left)
    if nf is None or nf.shape is Shape.UNTOUCHED or nf.p is not p:
        return None
    return minus(nf.base, p)


def rule_3_deleted_sources(expr: Expr) -> Expr | None:
    """``tau +M ((Sum_i (b_i - p)) *M p)  =>  tau`` (axiom 5)."""
    parts = _mod_parts(expr)
    if parts is None:
        return None
    tau, terms, p = parts
    if terms and all(t.kind == MINUS and t.right is p for t in terms):
        return tau
    return None


def rule_4_inserted_source(expr: Expr) -> Expr | None:
    """A source inserted by ``p`` turns the target into ``tau +I p`` (axioms 8/9)."""
    parts = _mod_parts(expr)
    if parts is None:
        return None
    tau, terms, p = parts
    if any(t.kind == PLUS_I and t.right is p for t in terms):
        return plus_i(tau, p)
    return None


def rule_5_insert_absorbs(expr: Expr) -> Expr | None:
    """``(tau_1 +I p) +M (tau_2 *M p)  =>  tau_1 +I p`` (axioms 6/9)."""
    parts = _mod_parts(expr)
    if parts is None:
        return None
    tau, _terms_, p = parts
    if tau.kind == PLUS_I and tau.right is p:
        return tau
    return None


def rule_6_target_factorize(expr: Expr) -> Expr | None:
    """Merge two successive modifications of the same target (axioms 1/3/11).

    ``(tau +M (s_1 *M p)) +M (s_2 *M p)  =>  tau +M ((s_1 + s_2) *M p)``.
    """
    parts = _mod_parts(expr)
    if parts is None:
        return None
    tau, terms2, p = parts
    inner = _mod_parts(tau)
    if inner is None:
        return None
    tau1, terms1, p1 = inner
    if p1 is not p:
        return None
    return plus_m(tau1, times_m(ssum(dict.fromkeys(terms1 + terms2)), p))


def rule_7_source_flatten(expr: Expr) -> Expr | None:
    """Flatten a source that was itself modified under ``p`` (axiom 3).

    A term ``x +M (s' *M p)`` inside the source disjunction is replaced by
    ``x`` together with the terms of ``s'``.
    """
    parts = _mod_parts(expr)
    if parts is None:
        return None
    tau, terms, p = parts
    new_terms: list[Expr] = []
    changed = False
    for t in terms:
        t_parts = _mod_parts(t)
        if t_parts is not None and t_parts[2] is p:
            new_terms.append(t_parts[0])
            new_terms.extend(t_parts[1])
            changed = True
        else:
            new_terms.append(t)
    if not changed:
        return None
    return plus_m(tau, times_m(ssum(dict.fromkeys(new_terms)), p))


def rule_8_drop_deleted_source(expr: Expr) -> Expr | None:
    """Drop ``(b - p)`` terms from a source disjunction (axioms 5/12).

    Only fires when at least one other term remains; the all-deleted case is
    Rule 3.
    """
    parts = _mod_parts(expr)
    if parts is None:
        return None
    tau, terms, p = parts
    kept = tuple(t for t in terms if not (t.kind == MINUS and t.right is p))
    if not kept or len(kept) == len(terms):
        return None
    return plus_m(tau, times_m(ssum(kept), p))


#: All rules, in the order the normalizer tries them.
ALL_RULES: tuple[Rule, ...] = (
    rule_4_inserted_source,
    rule_5_insert_absorbs,
    rule_7_source_flatten,
    rule_8_drop_deleted_source,
    rule_3_deleted_sources,
    rule_6_target_factorize,
    rule_1_insert_collapse,
    rule_2_delete_collapse,
)


def apply_rules_once(expr: Expr) -> Expr | None:
    """Apply the first applicable rule at the root, or ``None``."""
    for rule in ALL_RULES:
        rewritten = rule(expr)
        if rewritten is not None and rewritten is not expr:
            return rewritten
    return None


def _local_fixpoint(expr: Expr, fuel: int = 10_000) -> Expr:
    while fuel > 0:
        rewritten = apply_rules_once(expr)
        if rewritten is None:
            return expr
        expr = rewritten
        fuel -= 1
    raise RuntimeError("rule application did not terminate")  # pragma: no cover


_RULES_MEMO = ExprMemo("normalize_with_rules")


def normalize_with_rules(expr: Expr, *, memo: bool | None = None) -> Expr:
    """Normalize by exhaustive bottom-up rule application.

    An independent implementation of Theorem 5.3 used to cross-check the
    replay normalizer; on construction-produced expressions both agree (see
    ``tests/core/test_normalize.py``).  Memoized per node across calls (see
    :mod:`repro.core.memo`).
    """
    use_memo = memoization_enabled() if memo is None else memo
    table = _RULES_MEMO if use_memo else ExprMemo("rules:local", register=False)
    for node in table.pending_postorder(expr):
        if not node.children:
            table[node] = node
            continue
        children: tuple[Expr, ...] = tuple(table[c] for c in node.children)  # type: ignore[misc]
        if node.kind == SUM:
            rebuilt = ssum(children)
        elif node.kind == PLUS_I:
            rebuilt = plus_i(*children)
        elif node.kind == MINUS:
            rebuilt = minus(*children)
        elif node.kind == PLUS_M:
            rebuilt = plus_m(*children)
        else:
            rebuilt = times_m(*children)
        table[node] = _local_fixpoint(rebuilt)
    return table[expr]  # type: ignore[return-value]
