"""The twelve equivalence axioms of Figure 3.

Each axiom is a first-class object carrying symbolic builders for its two
sides.  This supports the two ways the paper uses the axioms:

* **symbolically** — instantiating both sides over UP[X] expressions, e.g.
  to verify that the Figure 6 rules and the normal form are implied by the
  axioms (``tests/core/test_axioms.py`` checks every axiom under every
  shipped Update-Structure and under the exact BDD semantics);
* **semantically** — checking that a candidate concrete Update-Structure
  (Section 4.1, Theorem 4.5) satisfies all axioms, via
  :func:`check_structure`.

Axioms with set/partition parameters (3, 5, 11) are represented by fixed
finite instances (two-element sums, two-block partitions); together with
associativity of the sum constructor these generate the general case.
"""

from __future__ import annotations

import itertools
import random
from typing import Callable, Mapping, Sequence

from .expr import Expr, evaluate, minus, plus_i, plus_m, ssum, times_m, var

__all__ = ["Axiom", "ALL_AXIOMS", "AXIOMS_BY_NAME", "check_structure", "axiom_violations"]


class Axiom:
    """One Figure 3 axiom: ``lhs(params) = rhs(params)`` for all params."""

    def __init__(
        self,
        name: str,
        params: tuple[str, ...],
        lhs: Callable[..., Expr],
        rhs: Callable[..., Expr],
        description: str,
    ):
        self.name = name
        self.params = params
        self._lhs = lhs
        self._rhs = rhs
        self.description = description

    def instantiate(self, mapping: Mapping[str, Expr] | None = None) -> tuple[Expr, Expr]:
        """Both sides as UP[X] expressions.

        Without a mapping the parameters become variables named after
        themselves; with one, the given expressions are substituted.
        """
        mapping = mapping or {}
        args = [mapping.get(p, var(p)) for p in self.params]
        return self._lhs(*args), self._rhs(*args)

    def holds_in(self, structure, values: Mapping[str, object]) -> bool:
        """Evaluate both sides in a concrete structure; True if equal."""
        lhs, rhs = self.instantiate()
        left = evaluate(lhs, structure, values)
        right = evaluate(rhs, structure, values)
        return structure.equal(left, right) if hasattr(structure, "equal") else left == right

    def __repr__(self) -> str:
        lhs, rhs = self.instantiate()
        return f"Axiom({self.name}: {lhs} = {rhs})"


def _mod(a: Expr, b: Expr, c: Expr) -> Expr:
    """Shorthand for ``a +M (b *M c)``."""
    return plus_m(a, times_m(b, c))


ALL_AXIOMS: tuple[Axiom, ...] = (
    Axiom(
        "axiom_1",
        ("a", "b", "c", "d"),
        lambda a, b, c, d: _mod(_mod(a, b, c), d, c),
        lambda a, b, c, d: _mod(_mod(a, d, c), b, c),
        "successive modification contributions under one annotation commute",
    ),
    Axiom(
        "axiom_2",
        ("a", "b", "c"),
        lambda a, b, c: minus(_mod(a, b, c), c),
        lambda a, b, c: minus(a, c),
        "deleting a modified tuple deletes the original",
    ),
    Axiom(
        "axiom_3",
        ("a", "b1", "b2", "c1", "c2", "d"),
        lambda a, b1, b2, c1, c2, d: _mod(_mod(a, ssum((c1, c2)), d), ssum((b1, b2)), d),
        lambda a, b1, b2, c1, c2, d: _mod(
            a, ssum((_mod(b1, c1, d), _mod(b2, c2, d))), d
        ),
        "source disjunctions may be partitioned across contributing tuples",
    ),
    Axiom(
        "axiom_4",
        ("a", "b"),
        lambda a, b: minus(minus(a, b), b),
        lambda a, b: minus(a, b),
        "deletion is idempotent",
    ),
    Axiom(
        "axiom_5",
        ("a", "b1", "b2", "c"),
        lambda a, b1, b2, c: _mod(a, ssum((minus(b1, c), minus(b2, c))), c),
        lambda a, b1, b2, c: a,
        "an update based only on deleted tuples has no effect",
    ),
    Axiom(
        "axiom_6",
        ("a", "b", "c"),
        lambda a, b, c: plus_i(_mod(a, b, c), c),
        lambda a, b, c: _mod(plus_i(a, c), b, c),
        "insertion commutes past a modification contribution",
    ),
    Axiom(
        "axiom_7",
        ("a", "b"),
        lambda a, b: minus(plus_i(a, b), b),
        lambda a, b: minus(a, b),
        "inserting then deleting equals deleting",
    ),
    Axiom(
        "axiom_8",
        ("a", "b", "c"),
        lambda a, b, c: _mod(a, plus_i(b, c), c),
        lambda a, b, c: _mod(plus_i(a, c), b, c),
        "modification from an inserted tuple inserts the target",
    ),
    Axiom(
        "axiom_9",
        ("a", "b", "c"),
        lambda a, b, c: plus_i(_mod(a, b, c), c),
        lambda a, b, c: plus_i(a, c),
        "insertion overrides a previous modification",
    ),
    Axiom(
        "axiom_10",
        ("a", "b"),
        lambda a, b: plus_i(minus(a, b), b),
        lambda a, b: plus_i(a, b),
        "insertion overrides a previous deletion",
    ),
    Axiom(
        "axiom_11",
        ("a", "b1", "b2", "d1", "d2", "c"),
        lambda a, b1, b2, d1, d2, c: _mod(a, ssum((b1, b2, d1, d2)), c),
        lambda a, b1, b2, d1, d2, c: _mod(_mod(a, ssum((b1, b2)), c), ssum((d1, d2)), c),
        "a source disjunction may be split across two contributions",
    ),
    Axiom(
        "axiom_12",
        ("a", "b", "c", "d"),
        lambda a, b, c, d: _mod(minus(a, b), c, b),
        lambda a, b, c, d: _mod(minus(a, b), _mod(minus(d, b), c, b), b),
        "a source may be wrapped as a deleted-and-modified tuple with the same sources",
    ),
)

AXIOMS_BY_NAME: dict[str, Axiom] = {axiom.name: axiom for axiom in ALL_AXIOMS}


def axiom_violations(
    structure,
    elements: Sequence[object],
    max_cases: int = 20_000,
    rng: random.Random | None = None,
) -> list[tuple[str, dict[str, object]]]:
    """All sampled axiom violations of a candidate structure.

    Enumerates parameter assignments from ``elements`` exhaustively when the
    case count is small, otherwise samples ``max_cases`` random assignments.
    Returns ``(axiom name, assignment)`` pairs; an empty list means the
    structure passed (a sound *test*, exhaustive for finite structures whose
    carrier is fully listed in ``elements``).
    """
    rng = rng or random.Random(0)
    violations: list[tuple[str, dict[str, object]]] = []
    for axiom in ALL_AXIOMS:
        arity = len(axiom.params)
        total = len(elements) ** arity
        if total <= max_cases:
            cases = itertools.product(elements, repeat=arity)
        else:
            cases = (
                tuple(rng.choice(elements) for _ in range(arity)) for _ in range(max_cases)
            )
        for case in cases:
            values = dict(zip(axiom.params, case))
            if not axiom.holds_in(structure, values):
                violations.append((axiom.name, values))
                break  # one witness per axiom is enough
    return violations


def check_structure(
    structure,
    elements: Sequence[object],
    max_cases: int = 20_000,
    rng: random.Random | None = None,
) -> bool:
    """True if no sampled axiom violation was found (see :func:`axiom_violations`)."""
    return not axiom_violations(structure, elements, max_cases=max_cases, rng=rng)
