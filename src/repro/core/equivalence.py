"""Deciding UP[X] equivalence of provenance expressions.

Three complementary methods, layered from cheap to exact:

1. :func:`equivalent_canonical` — normalize both expressions (Theorem 5.3)
   and compare canonicalized normal forms.  Canonicalization sorts source
   disjunctions and folds the ``(a - p) +M ((a + ...) *M p)`` self-update
   shape into ``a +M (... *M p)``; both are sound in every Update-Structure
   shipped with this library (all are distributive-lattice based, cf.
   Theorem 4.5's ``a + 1 = 1`` and ``a . a = a`` requirements).
2. :func:`equivalent_boolean` — exact equivalence under the Boolean
   Update-Structure (the deletion-propagation semantics of Section 4.1),
   decided with reduced ordered BDDs.  Since the Boolean structure is an
   UP[X] instance, UP[X]-equivalence implies Boolean equivalence; the
   converse direction is what Proposition 3.5's completeness argument
   gives for construction-produced expressions.
3. :func:`find_distinguishing_valuation` — a cheap randomized refuter that
   returns a witness valuation on which the two expressions differ, used
   by property tests to produce readable counterexamples.
"""

from __future__ import annotations

import random
from typing import Mapping

from .expr import (
    Expr,
    MINUS,
    PLUS_I,
    PLUS_M,
    SUM,
    TIMES_M,
    minus,
    plus_i,
    plus_m,
    ssum,
    times_m,
    variables,
)
from .memo import ExprMemo, memoization_enabled
from .normalize import normalize_expr

__all__ = [
    "canonical",
    "equivalent",
    "equivalent_canonical",
    "equivalent_boolean",
    "find_distinguishing_valuation",
    "BoolStructure",
]


class BoolStructure:
    """The Boolean Update-Structure of Section 4.1, self-contained.

    ``+M = +I = + = or``, ``*M = and``, ``a - b = a and not b``, ``0 =
    False``.  Duplicated here (rather than importing
    :mod:`repro.semantics`) so the core package stays dependency-free.
    """

    zero = False

    @staticmethod
    def plus_i(a: bool, b: bool) -> bool:
        return a or b

    @staticmethod
    def plus_m(a: bool, b: bool) -> bool:
        return a or b

    @staticmethod
    def plus(a: bool, b: bool) -> bool:
        return a or b

    @staticmethod
    def times_m(a: bool, b: bool) -> bool:
        return a and b

    @staticmethod
    def minus(a: bool, b: bool) -> bool:
        return a and not b

    @staticmethod
    def equal(a: bool, b: bool) -> bool:
        return a == b


# One persistent rebuild cache per fold flag; the structural sort keys are
# pure functions of a node, so all canonicalizations share one key table.
_CANONICAL_MEMOS = {
    True: ExprMemo("canonical:fold"),
    False: ExprMemo("canonical:nofold"),
}
_KEY_MEMO = ExprMemo("canonical:key")


def canonical(expr: Expr, fold_self_update: bool = True, *, memo: bool | None = None) -> Expr:
    """A canonical representative of ``expr``'s equivalence class.

    Sorts every source disjunction by a structural key and (optionally)
    rewrites ``MOD``/``DELMOD`` shapes whose base occurs among their own
    sources — the shape an identity modification produces — into the
    equivalent plain ``MOD`` shape.  Does **not** normalize; combine with
    :func:`repro.core.normalize.normalize_expr` for full canonization.
    Memoized per node across calls (see :mod:`repro.core.memo`).
    """
    use_memo = memoization_enabled() if memo is None else memo
    if use_memo:
        table = _CANONICAL_MEMOS[bool(fold_self_update)]
        keys = _KEY_MEMO
    else:
        table = ExprMemo("canonical:local", register=False)
        keys = ExprMemo("canonical:key:local", register=False)
    # The key table is written through _key(), outside pending_postorder's
    # own sync — bring it to the current generation once, up front.
    keys.sync()
    for node in table.pending_postorder(expr):
        if not node.children:
            new = node
        elif node.kind == SUM:
            children = sorted(
                (table[c] for c in node.children), key=lambda c: _key(c, keys)
            )
            new = ssum(dict.fromkeys(children))
        else:
            a: Expr = table[node.children[0]]  # type: ignore[assignment]
            b: Expr = table[node.children[1]]  # type: ignore[assignment]
            if node.kind == PLUS_I:
                new = plus_i(a, b)
            elif node.kind == MINUS:
                new = minus(a, b)
            elif node.kind == TIMES_M:
                new = times_m(a, b)
            else:
                new = _canonical_plus_m(a, b, fold_self_update)
        table[node] = new
        _key(new, keys)
    return table[expr]  # type: ignore[return-value]


def _key(node: Expr, keys: ExprMemo) -> str:
    """Structural sort key; fills ``keys`` for any yet-unseen sub-node."""
    pending = [node]
    while pending:
        current = pending[-1]
        if current in keys:
            pending.pop()
            continue
        missing = [c for c in current.children if c not in keys]
        if missing:
            pending.extend(missing)
            continue
        pending.pop()
        if current.is_var:
            keys[current] = f"v:{current.name}"
        elif current.is_zero:
            keys[current] = "0"
        else:
            keys[current] = (
                "(" + current.kind + " " + " ".join(keys[c] for c in current.children) + ")"  # type: ignore[misc]
            )
    return keys[node]  # type: ignore[return-value]


def _canonical_plus_m(a: Expr, b: Expr, fold_self_update: bool) -> Expr:
    """Rebuild ``a +M b`` with the self-update fold applied."""
    if not fold_self_update or b.kind != TIMES_M:
        return plus_m(a, b)
    sources, p = b.children
    terms = sources.children if sources.kind == SUM else (sources,)
    base = a
    deleted_spine = a.kind == MINUS and a.children[1] is p
    if deleted_spine:
        base = a.children[0]
    if base not in terms:
        return plus_m(a, b)
    kept = tuple(t for t in terms if t is not base)
    new_rhs = times_m(ssum(kept), p)
    return plus_m(base, new_rhs)


def equivalent_canonical(e1: Expr, e2: Expr, *, memo: bool | None = None) -> bool:
    """Normal-form + canonicalization equivalence (fast, construction-shaped)."""
    return canonical(normalize_expr(e1, memo=memo), memo=memo) is canonical(
        normalize_expr(e2, memo=memo), memo=memo
    )


def equivalent_boolean(e1: Expr, e2: Expr) -> bool:
    """Exact equivalence under the Boolean structure, via ROBDDs."""
    from repro.bdd import Bdd, expr_to_bdd  # local import: keep core standalone

    order = sorted(variables(e1) | variables(e2))
    bdd = Bdd(order)
    return expr_to_bdd(e1, bdd) == expr_to_bdd(e2, bdd)


def equivalent(e1: Expr, e2: Expr, method: str = "auto") -> bool:
    """Equivalence with method selection.

    ``"canonical"`` and ``"boolean"`` force one method; ``"auto"`` tries the
    canonical comparison and falls back to the exact Boolean check when the
    canonical forms differ (sound because canonicalization never merges
    inequivalent expressions, and for construction-produced expressions
    Boolean equivalence coincides with UP[X] equivalence by Prop. 3.5).
    """
    if method == "canonical":
        return equivalent_canonical(e1, e2)
    if method == "boolean":
        return equivalent_boolean(e1, e2)
    if method != "auto":
        raise ValueError(f"unknown equivalence method {method!r}")
    return equivalent_canonical(e1, e2) or equivalent_boolean(e1, e2)


def find_distinguishing_valuation(
    e1: Expr,
    e2: Expr,
    trials: int = 256,
    rng: random.Random | None = None,
) -> Mapping[str, bool] | None:
    """A Boolean valuation on which the expressions evaluate differently.

    Randomized and one-sided: ``None`` means no witness was found in
    ``trials`` attempts, not a proof of equivalence (use
    :func:`equivalent_boolean` for that).
    """
    from .expr import evaluate

    rng = rng or random.Random(0)
    names = sorted(variables(e1) | variables(e2))
    structure = BoolStructure()
    for _ in range(trials):
        env = {name: rng.random() < 0.5 for name in names}
        if evaluate(e1, structure, env) != evaluate(e2, structure, env):
            return env
    return None
