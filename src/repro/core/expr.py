"""UP[X] provenance expressions.

This module implements the algebraic structure ``UP[X]`` of Section 3.1 of
the paper: symbolic expressions over a set of basic annotations (variables)
built from the operations

==========  ===========================================  ==============
operation   meaning                                      constructor
==========  ===========================================  ==============
``+I``      insertion                                    :func:`plus_i`
``-``       deletion (the paper unifies ``-D``/``-M``)   :func:`minus`
``+M``      modification (tuple after modification)      :func:`plus_m`
``*M``      modification (source ``x`` query)            :func:`times_m`
``+``       disjunction over modification sources        :func:`ssum`
``0``       absent tuple / update that did not happen    :data:`ZERO`
==========  ===========================================  ==============

Expressions are *immutable* and *hash-consed*: building the same expression
twice returns the same object, so structural equality is identity equality
and common sub-expressions are shared.  Sharing is essential: the naive
provenance construction of Section 5.1 produces expressions whose *expanded*
size is exponential in the transaction length (Proposition 5.1) while their
DAG size stays small; hash-consing lets us faithfully *measure* the expanded
size (:func:`size`) without exhausting memory.

The *zero-related axioms* of Section 3.1 are applied eagerly by the smart
constructors (they are part of the definition of the structure, not of the
Figure 3 equivalence axioms)::

    0 - a = 0          a - 0 = a
    0 +I a = a         a +I 0 = a
    0 +M a = a         a +M 0 = a
    a *M 0 = 0 *M a = 0

All algorithms over expressions (size, depth, variables, evaluation,
rendering) are iterative: naive provenance chains can be thousands of nodes
deep, far beyond Python's recursion limit.
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Mapping

__all__ = [
    "Expr",
    "ZERO",
    "VAR",
    "ZERO_KIND",
    "PLUS_I",
    "MINUS",
    "PLUS_M",
    "TIMES_M",
    "SUM",
    "var",
    "plus_i",
    "minus",
    "plus_m",
    "times_m",
    "ssum",
    "size",
    "depth",
    "variables",
    "evaluate",
    "substitute",
    "to_infix",
    "to_tree",
    "postorder",
    "subexpressions",
    "intern_table_size",
    "intern_generation",
    "clear_intern_table",
    "SweepReport",
    "register_expr_roots",
    "set_intern_gc",
    "intern_gc_enabled",
    "sweep_intern_table",
    "intern_sweep_stats",
]

# Node kinds.  Plain strings keep reprs and debugging friendly.
VAR = "var"
ZERO_KIND = "zero"
PLUS_I = "+I"
MINUS = "-"
PLUS_M = "+M"
TIMES_M = "*M"
SUM = "+"

_BINARY_KINDS = (PLUS_I, MINUS, PLUS_M, TIMES_M)


class Expr:
    """A node of an UP[X] expression.

    Do not instantiate directly; use :func:`var`, :data:`ZERO` and the
    operation constructors, which intern nodes and apply the zero axioms.

    Attributes:
        kind: one of :data:`VAR`, :data:`ZERO_KIND`, :data:`PLUS_I`,
            :data:`MINUS`, :data:`PLUS_M`, :data:`TIMES_M`, :data:`SUM`.
        name: the variable name for ``VAR`` nodes, otherwise ``None``.
        children: operand tuple (2 operands for the binary operations,
            any number for ``SUM``, empty for leaves).
    """

    # __weakref__ lets non-pinning caches (the arena's encode/decode maps)
    # key or value expressions without keeping them alive past a sweep.
    __slots__ = ("kind", "name", "children", "_hash", "_size", "_depth", "__weakref__")

    def __init__(self, kind: str, name: str | None, children: tuple["Expr", ...]):
        self.kind = kind
        self.name = name
        self.children = children
        self._hash = hash((kind, name, tuple(id(c) for c in children)))
        self._size: int | None = None
        self._depth: int | None = None

    # Identity semantics: interning guarantees structural equality iff
    # object identity, so the default object equality is correct and fast.
    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Expr({to_infix(self)})"

    def __str__(self) -> str:
        return to_infix(self)

    @property
    def is_zero(self) -> bool:
        """True for the special element ``0``."""
        return self.kind == ZERO_KIND

    @property
    def is_var(self) -> bool:
        """True for basic annotations (identifiers)."""
        return self.kind == VAR

    # Convenience accessors for binary nodes.
    @property
    def left(self) -> "Expr":
        """Left operand of a binary node."""
        if len(self.children) != 2:
            raise ValueError(f"{self.kind} node has no left/right operands")
        return self.children[0]

    @property
    def right(self) -> "Expr":
        """Right operand of a binary node."""
        if len(self.children) != 2:
            raise ValueError(f"{self.kind} node has no left/right operands")
        return self.children[1]

    def size(self) -> int:
        """Expanded formula size (number of tree nodes, leaves included).

        Counts the expression as a *tree*, i.e. shared sub-expressions are
        counted with multiplicity.  This is the "provenance size" the paper
        reports; it may be exponentially larger than the number of distinct
        nodes, hence the memoized bottom-up big-int computation.
        """
        return size(self)

    def depth(self) -> int:
        """Height of the expression tree (a leaf has depth 1)."""
        return depth(self)

    def variables(self) -> frozenset[str]:
        """The set of annotation names occurring in the expression."""
        return variables(self)


# ---------------------------------------------------------------------------
# Interning
# ---------------------------------------------------------------------------

# Keys hold strong references to child nodes so ids stay valid for the whole
# lifetime of the table.
_INTERN: dict[object, Expr] = {}

# Bumped by clear_intern_table().  Identity-keyed caches over interned nodes
# (see repro.core.memo) remember the generation they were filled at and drop
# themselves when it changes: after a clear, structurally equal nodes no
# longer share identity with their pre-clear builds, so pre-clear cache
# entries must never answer for post-clear nodes.
_GENERATION = 0


def _intern(kind: str, name: str | None, children: tuple[Expr, ...]) -> Expr:
    # The miss path goes through dict.setdefault: key comparison is pure
    # C-level (ints, strs, identity-compared Exprs), so the insert-if-absent
    # is atomic under the GIL and two threads interning the same shape both
    # receive the single table entry.  A plain check-then-insert could let
    # each thread escape with its own node, silently breaking the
    # structural-equality-iff-identity invariant for the process (the
    # provenance server runs its writer in a thread beside client decoders).
    key = (kind, name, tuple(id(c) for c in children), children)
    node = _INTERN.get(key)
    if node is None:
        candidate = Expr(kind, name, children)
        if _GC_ACTIVE:
            # Nursery entry BEFORE the table insert: any node a sweep can
            # see in its table snapshot is therefore already protected by
            # the nursery (or reachable from a root), closing the window
            # where a freshly interned but not-yet-rooted node could be
            # swept out from under the thread that just built it.
            _NURSERY.append(candidate)
        node = _INTERN.setdefault(key, candidate)
    return node


# ---------------------------------------------------------------------------
# Reclaimable interning (epoch sweep at quiescent points)
# ---------------------------------------------------------------------------

# Nursery: every node created since the last sweep, regardless of whether it
# won its setdefault race.  The sweep retires the nursery and treats its
# contents as roots for that one sweep; losers (duplicates that lost the
# setdefault race) are simply dropped with it.  Only populated while the GC
# is active so the default grow-only behaviour pays nothing.
_NURSERY: list[Expr] = []
_GC_ACTIVE = False

# Live-annotation providers (stores, published snapshots).  Weakly held so a
# discarded engine or snapshot stops pinning its expressions automatically.
_ROOT_PROVIDERS: "weakref.WeakSet" = weakref.WeakSet()

_SWEEP_LOCK = threading.Lock()
_SWEEPS = 0
_SWEPT_TOTAL = 0


@dataclass(frozen=True)
class SweepReport:
    """Outcome of one :func:`sweep_intern_table` call."""

    before: int
    after: int
    swept: int
    memo_entries_dropped: int
    nursery_retired: int

    def as_dict(self) -> dict:
        return {
            "before": self.before,
            "after": self.after,
            "swept": self.swept,
            "memo_entries_dropped": self.memo_entries_dropped,
            "nursery_retired": self.nursery_retired,
        }


def register_expr_roots(provider) -> None:
    """Register a live-expression root provider for the intern-table sweep.

    ``provider`` must expose ``expr_roots()`` yielding the objects that hold
    its expressions: :class:`Expr` nodes, or containers/annotation objects
    exposing ``expr_refs()`` (e.g. normal forms).  Held weakly — dropping
    the provider unregisters it.
    """
    _ROOT_PROVIDERS.add(provider)


def set_intern_gc(enabled: bool) -> bool:
    """Enable/disable reclaimable interning; returns the previous setting.

    Must be switched on *before* threads that intern concurrently with
    sweeps start (the nursery protection only covers nodes created while
    active).  Disabling empties the nursery.
    """
    global _GC_ACTIVE
    previous = _GC_ACTIVE
    _GC_ACTIVE = bool(enabled)
    if not _GC_ACTIVE:
        del _NURSERY[:]
    return previous


def intern_gc_enabled() -> bool:
    """True while the nursery (and therefore sweeping) is active."""
    return _GC_ACTIVE


def _mark_from(objects, marked: set[int]) -> None:
    """Mark every :class:`Expr` reachable from ``objects`` into ``marked``.

    Follows ``children`` on expressions, ``expr_refs()`` on annotation
    objects that embed expressions (normal forms, contributions), and
    descends into plain tuples/lists/sets so memo values of any shipped
    shape are traversed.  Iterative — provenance chains exceed the
    recursion limit.
    """
    stack = list(objects)
    while stack:
        obj = stack.pop()
        if obj is None:
            continue
        if isinstance(obj, Expr):
            if id(obj) in marked:
                continue
            marked.add(id(obj))
            stack.extend(obj.children)
        elif isinstance(obj, (tuple, list, set, frozenset)):
            stack.extend(obj)
        else:
            refs = getattr(obj, "expr_refs", None)
            if refs is not None:
                stack.extend(refs())


def sweep_intern_table() -> SweepReport:
    """Drop interned nodes unreachable from the registered roots.

    Mark-and-sweep over the intern table, intended for the quiescent
    points a single writer already owns (between admitted batches, between
    benchmark rounds).  The root set is: every registered provider's
    ``expr_roots()``, the nursery (all nodes created since the previous
    sweep), and ``ZERO``.  Memo tables are pruned alongside: entries whose
    key survives are kept and their cached values marked live (so a memo
    hit can never resurface a swept node); entries whose key is doomed are
    dropped — discarding cache entries is always sound.

    Survivors keep their identity — the interning generation does *not*
    move, so structural-equality-iff-identity holds across a sweep for
    every reachable expression.  Concurrent interning of new shapes is
    safe (nursery + in-place ``pop``: the table dict is never replaced);
    what the quiescent-point contract excludes is concurrently *reviving*
    an old shape reachable from no root mid-sweep.
    """
    global _NURSERY, _SWEEPS, _SWEPT_TOTAL
    with _SWEEP_LOCK:
        retired = _NURSERY
        _NURSERY = []
        table_snapshot = list(_INTERN.items())
        before = len(table_snapshot)
        marked: set[int] = {id(ZERO)}
        _mark_from(retired, marked)
        _mark_from(list(_NURSERY), marked)
        for provider in list(_ROOT_PROVIDERS):
            _mark_from(provider.expr_roots(), marked)
        from .memo import _REGISTRY as _memo_registry  # circular at module load

        memo_dropped = 0
        for memo in _memo_registry:
            table = memo._table
            if not table:
                continue
            kept: dict[int, tuple[Expr, object]] = {}
            kept_values: list[object] = []
            for key, entry in table.items():
                if id(entry[0]) in marked:
                    kept[key] = entry
                    kept_values.append(entry[1])
                else:
                    memo_dropped += 1
            if len(kept) != len(table):
                memo._table = kept
            _mark_from(kept_values, marked)
        swept = 0
        for key, node in table_snapshot:
            if id(node) not in marked:
                if _INTERN.pop(key, None) is not None:
                    swept += 1
        _SWEEPS += 1
        _SWEPT_TOTAL += swept
        return SweepReport(
            before=before,
            after=len(_INTERN),
            swept=swept,
            memo_entries_dropped=memo_dropped,
            nursery_retired=len(retired),
        )


def intern_sweep_stats() -> dict:
    """Cumulative sweep counters (diagnostics / server ``stats`` op)."""
    return {
        "gc_active": _GC_ACTIVE,
        "sweeps": _SWEEPS,
        "swept_total": _SWEPT_TOTAL,
        "nursery_size": len(_NURSERY),
        "root_providers": len(_ROOT_PROVIDERS),
    }


def intern_table_size() -> int:
    """Number of distinct live expression nodes (diagnostics / benches)."""
    return len(_INTERN)


def intern_generation() -> int:
    """Current interning generation (bumped by :func:`clear_intern_table`)."""
    return _GENERATION


def clear_intern_table() -> None:
    """Drop all interned nodes except ``ZERO``.

    Only intended for long benchmark processes; expressions created before
    the call remain valid but will no longer compare identical to
    structurally equal expressions created after it.  Tests never need this.

    Bumps the interning generation, which invalidates every
    :class:`repro.core.memo.ExprMemo` on its next use.
    """
    global _GENERATION
    _GENERATION += 1
    _INTERN.clear()
    del _NURSERY[:]
    _INTERN[(ZERO_KIND, None, (), ())] = ZERO


#: The special element ``0`` (absent tuple / update that did not happen).
ZERO: Expr = Expr(ZERO_KIND, None, ())
_INTERN[(ZERO_KIND, None, (), ())] = ZERO


def var(name: str) -> Expr:
    """A basic annotation (identifier) such as ``p1`` or ``t_42``."""
    if not isinstance(name, str) or not name:
        raise TypeError(f"annotation name must be a non-empty string, got {name!r}")
    return _intern(VAR, name, ())


# ---------------------------------------------------------------------------
# Smart constructors (zero-related axioms applied eagerly)
# ---------------------------------------------------------------------------


def plus_i(a: Expr, b: Expr) -> Expr:
    """``a +I b``: provenance of inserting a tuple annotated ``a`` by query ``b``."""
    if b.is_zero:
        return a
    if a.is_zero:
        return b
    return _intern(PLUS_I, None, (a, b))


def minus(a: Expr, b: Expr) -> Expr:
    """``a - b``: provenance of deleting a tuple annotated ``a`` by query ``b``."""
    if b.is_zero:
        return a
    if a.is_zero:
        return ZERO
    return _intern(MINUS, None, (a, b))


def plus_m(a: Expr, b: Expr) -> Expr:
    """``a +M b``: tuple annotated ``a`` receives modification contribution ``b``."""
    if b.is_zero:
        return a
    if a.is_zero:
        return b
    return _intern(PLUS_M, None, (a, b))


def times_m(a: Expr, b: Expr) -> Expr:
    """``a *M b``: source annotated ``a`` modified by query annotated ``b``."""
    if a.is_zero or b.is_zero:
        return ZERO
    return _intern(TIMES_M, None, (a, b))


def ssum(terms: Iterable[Expr], dedup: bool = False) -> Expr:
    """``b_0 + ... + b_n``: the disjunction over modification sources.

    Zero terms are dropped and nested sums are flattened (associativity of
    the disjunction; an empty disjunction is ``0``).  With ``dedup=True``
    syntactically identical terms are collapsed, preserving first-occurrence
    order — sound in every Update-Structure shipped with this library (all
    have idempotent ``+``) but *not* applied by default so that the naive
    construction of Section 5.1 stays faithful to the paper.
    """
    flat: list[Expr] = []
    for t in terms:
        if t.is_zero:
            continue
        if t.kind == SUM:
            flat.extend(t.children)
        else:
            flat.append(t)
    if dedup:
        flat = list(dict.fromkeys(flat))
    if not flat:
        return ZERO
    if len(flat) == 1:
        return flat[0]
    return _intern(SUM, None, tuple(flat))


# ---------------------------------------------------------------------------
# Traversal
# ---------------------------------------------------------------------------


def postorder(expr: Expr) -> Iterator[Expr]:
    """Iterate over the distinct sub-expressions of ``expr`` in post-order.

    Each distinct (shared) node is yielded exactly once, children before
    parents.  Iterative — safe for arbitrarily deep expressions.
    """
    seen: set[int] = set()
    stack: list[tuple[Expr, bool]] = [(expr, False)]
    while stack:
        node, expanded = stack.pop()
        if expanded:
            yield node
            continue
        if id(node) in seen:
            continue
        seen.add(id(node))
        stack.append((node, True))
        for child in reversed(node.children):
            if id(child) not in seen:
                stack.append((child, False))


def subexpressions(expr: Expr) -> list[Expr]:
    """All distinct sub-expressions of ``expr`` (post-order)."""
    return list(postorder(expr))


# ---------------------------------------------------------------------------
# Measures
# ---------------------------------------------------------------------------


def size(expr: Expr) -> int:
    """Expanded tree size of ``expr`` (see :meth:`Expr.size`)."""
    if expr._size is not None:
        return expr._size
    for node in postorder(expr):
        if node._size is None:
            if not node.children:
                node._size = 1
            else:
                node._size = 1 + sum(c._size for c in node.children)  # type: ignore[misc]
    assert expr._size is not None
    return expr._size


def depth(expr: Expr) -> int:
    """Height of the expression tree (a leaf has depth 1)."""
    if expr._depth is not None:
        return expr._depth
    for node in postorder(expr):
        if node._depth is None:
            if not node.children:
                node._depth = 1
            else:
                node._depth = 1 + max(c._depth for c in node.children)  # type: ignore[type-var]
    assert expr._depth is not None
    return expr._depth


def variables(expr: Expr) -> frozenset[str]:
    """Annotation names occurring in ``expr``."""
    out: set[str] = set()
    for node in postorder(expr):
        if node.kind == VAR:
            out.add(node.name)  # type: ignore[arg-type]
    return frozenset(out)


# ---------------------------------------------------------------------------
# Evaluation (specialization into a concrete Update-Structure)
# ---------------------------------------------------------------------------


def evaluate(expr: Expr, structure, env: Mapping[str, object] | Callable[[str], object]):
    """Evaluate ``expr`` in a concrete Update-Structure.

    ``structure`` must provide the operations of Definition 4.1:
    ``plus_i(a, b)``, ``minus(a, b)``, ``plus_m(a, b)``, ``times_m(a, b)``,
    ``plus(a, b)`` and the constant ``zero`` (see
    :class:`repro.semantics.structure.UpdateStructure`).

    ``env`` maps annotation names to structure values; it may be a mapping
    or a callable.  Evaluation memoizes on shared nodes, so evaluating the
    naive construction's exponential expressions stays polynomial in the
    DAG size.

    Raises:
        KeyError: if a variable has no value in ``env``.
    """
    lookup = env if callable(env) else env.__getitem__
    memo: dict[int, object] = {}
    for node in postorder(expr):
        if node.kind == VAR:
            memo[id(node)] = lookup(node.name)
        elif node.kind == ZERO_KIND:
            memo[id(node)] = structure.zero
        elif node.kind == SUM:
            acc = memo[id(node.children[0])]
            for child in node.children[1:]:
                acc = structure.plus(acc, memo[id(child)])
            memo[id(node)] = acc
        else:
            a = memo[id(node.children[0])]
            b = memo[id(node.children[1])]
            if node.kind == PLUS_I:
                memo[id(node)] = structure.plus_i(a, b)
            elif node.kind == MINUS:
                memo[id(node)] = structure.minus(a, b)
            elif node.kind == PLUS_M:
                memo[id(node)] = structure.plus_m(a, b)
            elif node.kind == TIMES_M:
                memo[id(node)] = structure.times_m(a, b)
            else:  # pragma: no cover - exhaustive kinds
                raise AssertionError(f"unknown node kind {node.kind}")
    return memo[id(expr)]


def substitute(expr: Expr, mapping: Mapping[str, Expr]) -> Expr:
    """Replace variables by expressions, rebuilding through smart constructors.

    Variables absent from ``mapping`` are left untouched.  Useful for
    partial specialization, e.g. setting a transaction annotation to ``0``
    (abortion) while keeping tuple annotations symbolic.
    """
    memo: dict[int, Expr] = {}
    for node in postorder(expr):
        if node.kind == VAR:
            memo[id(node)] = mapping.get(node.name, node)  # type: ignore[arg-type]
        elif node.kind == ZERO_KIND:
            memo[id(node)] = node
        elif node.kind == SUM:
            memo[id(node)] = ssum(memo[id(c)] for c in node.children)
        else:
            a = memo[id(node.children[0])]
            b = memo[id(node.children[1])]
            if node.kind == PLUS_I:
                memo[id(node)] = plus_i(a, b)
            elif node.kind == MINUS:
                memo[id(node)] = minus(a, b)
            elif node.kind == PLUS_M:
                memo[id(node)] = plus_m(a, b)
            else:
                memo[id(node)] = times_m(a, b)
    return memo[id(expr)]


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------


def to_infix(expr: Expr) -> str:
    """Render as an infix formula, e.g. ``((p1 +M (p3 *M p)) - p)``."""
    memo: dict[int, str] = {}
    for node in postorder(expr):
        if node.kind == VAR:
            memo[id(node)] = node.name  # type: ignore[assignment]
        elif node.kind == ZERO_KIND:
            memo[id(node)] = "0"
        elif node.kind == SUM:
            memo[id(node)] = "(" + " + ".join(memo[id(c)] for c in node.children) + ")"
        else:
            a = memo[id(node.children[0])]
            b = memo[id(node.children[1])]
            memo[id(node)] = f"({a} {node.kind} {b})"
    return memo[id(expr)]


def to_tree(expr: Expr, indent: str = "  ") -> str:
    """Render as an indented tree, mirroring the paper's Figure 5 drawings."""
    lines: list[str] = []
    stack: list[tuple[Expr, int]] = [(expr, 0)]
    while stack:
        node, level = stack.pop()
        if node.kind == VAR:
            label = node.name or "?"
        elif node.kind == ZERO_KIND:
            label = "0"
        else:
            label = node.kind
        lines.append(f"{indent * level}{label}")
        for child in reversed(node.children):
            stack.append((child, level + 1))
    return "\n".join(lines)
