"""The UP[X] provenance algebra (paper Sections 3 and 5).

Public surface:

* expressions — :func:`var`, :data:`ZERO`, :func:`plus_i`, :func:`minus`,
  :func:`plus_m`, :func:`times_m`, :func:`ssum`, :func:`evaluate`;
* the twelve Figure 3 axioms — :data:`ALL_AXIOMS`, :func:`check_structure`;
* the Theorem 5.3 normal form — :class:`NormalForm`, :func:`normalize`;
* the Figure 6 rules — :data:`ALL_RULES`, :func:`normalize_with_rules`;
* Proposition 5.5 minimization — :func:`minimize`;
* equivalence — :func:`equivalent`, :func:`canonical`;
* rewrite memoization — :class:`ExprMemo`, :func:`memoization`,
  :func:`memo_stats`, :func:`clear_memos` (see :mod:`repro.core.memo`).
"""

from .axioms import ALL_AXIOMS, AXIOMS_BY_NAME, Axiom, axiom_violations, check_structure
from .equivalence import (
    BoolStructure,
    canonical,
    equivalent,
    equivalent_boolean,
    equivalent_canonical,
    find_distinguishing_valuation,
)
from .expr import (
    Expr,
    ZERO,
    depth,
    evaluate,
    minus,
    plus_i,
    plus_m,
    size,
    ssum,
    substitute,
    subexpressions,
    times_m,
    to_infix,
    to_tree,
    var,
    variables,
)
from .memo import (
    ExprMemo,
    MemoStats,
    clear_memos,
    memo_stats,
    memoization,
    memoization_enabled,
    set_memoization,
)
from .minimize import is_minimized, minimize
from .normal_form import Contribution, NormalForm, Shape, merge_contributions
from .normalize import normalize, normalize_expr
from .rules import ALL_RULES, apply_rules_once, match_normal_form, normalize_with_rules

__all__ = [
    "ALL_AXIOMS",
    "ALL_RULES",
    "AXIOMS_BY_NAME",
    "Axiom",
    "BoolStructure",
    "Contribution",
    "Expr",
    "ExprMemo",
    "MemoStats",
    "NormalForm",
    "Shape",
    "ZERO",
    "apply_rules_once",
    "axiom_violations",
    "canonical",
    "check_structure",
    "clear_memos",
    "depth",
    "equivalent",
    "equivalent_boolean",
    "equivalent_canonical",
    "evaluate",
    "find_distinguishing_valuation",
    "is_minimized",
    "match_normal_form",
    "memo_stats",
    "memoization",
    "memoization_enabled",
    "merge_contributions",
    "minimize",
    "minus",
    "set_memoization",
    "normalize",
    "normalize_expr",
    "normalize_with_rules",
    "plus_i",
    "plus_m",
    "size",
    "ssum",
    "subexpressions",
    "substitute",
    "times_m",
    "to_infix",
    "to_tree",
    "var",
    "variables",
]
