"""Hyperplane selection patterns.

A hyperplane pattern over a relation constrains each attribute position
independently: a position either must equal a constant, or is a variable
optionally restricted by a *disequality set* (the paper's ``[A != a]``
conditions).  This is exactly the "domain-based" selection class of
Abiteboul & Vianu used by the paper — no joins, no inter-attribute
comparisons.

Patterns are index-resolved (positions, not attribute names) so matching a
row is a handful of tuple lookups; the builders accept attribute names via
a :class:`~repro.db.schema.Relation`.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from ..db.schema import Relation
from ..errors import QueryError

__all__ = ["Pattern"]


class Pattern:
    """An index-resolved hyperplane pattern.

    Attributes:
        arity: arity of the relation the pattern speaks about.
        eq: ``{position: constant}`` equality constraints.
        neq: ``{position: frozenset(excluded constants)}`` disequalities.
    """

    __slots__ = ("arity", "eq", "neq", "_eq_items", "_neq_items")

    def __init__(
        self,
        arity: int,
        eq: Mapping[int, object] | None = None,
        neq: Mapping[int, Iterable[object]] | None = None,
    ):
        self.arity = arity
        self.eq = dict(eq or {})
        self.neq = {i: frozenset(vals) for i, vals in (neq or {}).items() if vals}
        for i in (*self.eq, *self.neq):
            if not 0 <= i < arity:
                raise QueryError(f"pattern position {i} out of range for arity {arity}")
        overlap = set(self.eq) & set(self.neq)
        for i in overlap:
            if self.eq[i] in self.neq[i]:
                raise QueryError(
                    f"contradictory pattern: position {i} equals {self.eq[i]!r} "
                    f"but excludes it"
                )
            # The equality subsumes the disequalities.
            del self.neq[i]
        # Pre-materialized items for the hot matching loop.
        self._eq_items = tuple(self.eq.items())
        self._neq_items = tuple(self.neq.items())

    # -- builders -------------------------------------------------------------

    @classmethod
    def any(cls, arity: int) -> "Pattern":
        """The pattern matching every row of the given arity."""
        return cls(arity)

    @classmethod
    def exact(cls, row: Sequence[object]) -> "Pattern":
        """The pattern matching exactly ``row``."""
        t = tuple(row)
        return cls(len(t), eq=dict(enumerate(t)))

    @classmethod
    def build(
        cls,
        relation: Relation,
        where: Mapping[str, object] | None = None,
        where_not: Mapping[str, object | Iterable[object]] | None = None,
    ) -> "Pattern":
        """Name-based builder: ``where`` are equalities, ``where_not`` disequalities.

        ``where_not`` values may be single constants or iterables of
        constants (sets and tuples are treated as several disequalities;
        strings count as single constants).
        """
        eq = {relation.index_of(a): v for a, v in (where or {}).items()}
        neq: dict[int, set[object]] = {}
        for attr, value in (where_not or {}).items():
            values = (
                set(value)
                if isinstance(value, (set, frozenset, list, tuple))
                else {value}
            )
            neq.setdefault(relation.index_of(attr), set()).update(values)
        return cls(relation.arity, eq=eq, neq=neq)

    # -- matching -------------------------------------------------------------

    def matches(self, row: tuple[object, ...]) -> bool:
        """True if ``row`` satisfies the pattern (paper's ``t |= u``)."""
        for i, v in self._eq_items:
            if row[i] != v:
                return False
        for i, excluded in self._neq_items:
            if row[i] in excluded:
                return False
        return True

    @property
    def is_exact(self) -> bool:
        """True if the pattern pins every position to a constant."""
        return len(self.eq) == self.arity

    def as_row(self) -> tuple[object, ...]:
        """The single row an exact pattern matches."""
        if not self.is_exact:
            raise QueryError("pattern is not exact")
        return tuple(self.eq[i] for i in range(self.arity))

    # -- algebra (used by the Karabeg-Vianu rewrites) ---------------------------

    def subsumes(self, other: "Pattern") -> bool:
        """True if every row matching ``other`` matches ``self``.

        Sound and complete over an infinite domain: a constant at a position
        can only be subsumed by the same constant or by a variable whose
        disequalities avoid it; a variable only by a variable with a subset
        of the disequalities.
        """
        if self.arity != other.arity:
            return False
        for i, v in self._eq_items:
            if other.eq.get(i, _MISSING) != v:
                return False
        for i, excluded in self._neq_items:
            if i in other.eq:
                if other.eq[i] in excluded:
                    return False
            elif not excluded <= other.neq.get(i, frozenset()):
                return False
        return True

    def disjoint_from(self, other: "Pattern") -> bool:
        """True if no row can match both patterns.

        Sufficient (and over an infinite domain, complete) condition: some
        position has two different constants, or a constant on one side
        excluded on the other.  Variable/variable positions always overlap.
        """
        if self.arity != other.arity:
            return True
        for i, v in self._eq_items:
            if i in other.eq and other.eq[i] != v:
                return True
            if v in other.neq.get(i, frozenset()):
                return True
        for i, excluded in self._neq_items:
            if other.eq.get(i, _MISSING) in excluded:
                return True
        return False

    def intersect(self, other: "Pattern") -> "Pattern | None":
        """The pattern matching exactly the rows both match, or ``None``."""
        if self.arity != other.arity or self.disjoint_from(other):
            return None
        eq = dict(self.eq)
        eq.update(other.eq)
        neq: dict[int, set[object]] = {}
        for source in (self.neq, other.neq):
            for i, excluded in source.items():
                if i in eq:
                    continue
                neq.setdefault(i, set()).update(excluded)
        return Pattern(self.arity, eq=eq, neq=neq)

    # -- plumbing ---------------------------------------------------------------

    def key(self) -> tuple:
        return (
            self.arity,
            tuple(sorted(self.eq.items(), key=lambda kv: kv[0])),
            tuple(sorted((i, tuple(sorted(map(repr, s)))) for i, s in self.neq.items())),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Pattern):
            return NotImplemented
        return self.arity == other.arity and self.eq == other.eq and self.neq == other.neq

    def __hash__(self) -> int:
        return hash(self.key())

    def describe(self, relation: Relation | None = None) -> str:
        """Human-readable rendering, with attribute names when available."""
        parts = []
        for i in range(self.arity):
            name = relation.attributes[i] if relation else f"${i}"
            if i in self.eq:
                parts.append(f"{name}={self.eq[i]!r}")
            elif i in self.neq:
                parts.append(
                    " and ".join(f"{name}!={v!r}" for v in sorted(self.neq[i], key=repr))
                )
        return " and ".join(parts) if parts else "true"

    def __repr__(self) -> str:
        return f"Pattern({self.describe()})"


_MISSING = object()
