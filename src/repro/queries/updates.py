"""Hyperplane update queries: insertion, deletion, modification.

The three query forms of paper Section 2, restricted exactly as there:

* :class:`Insert` adds one constant tuple (``R+(u):-``);
* :class:`Delete` removes all tuples satisfying a hyperplane pattern
  (``R-(u):-``);
* :class:`Modify` rewrites all tuples satisfying a pattern by assigning
  constants to a subset of positions (``RM(u1, u2):-`` where ``u2`` either
  repeats ``u1``'s entry or is a constant).

Every query carries an *annotation* — the ``p`` of ``R+,p(u):-`` — which
the provenance semantics propagates to the tuples the query touches.  A
:class:`Transaction` is a named sequence of queries sharing one annotation.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from ..db.schema import Relation
from ..errors import QueryError
from .pattern import Pattern

__all__ = ["UpdateQuery", "Insert", "Delete", "Modify", "Transaction"]


class UpdateQuery:
    """Base class for the three hyperplane update query forms."""

    __slots__ = ("relation", "annotation")

    kind = "update"

    def __init__(self, relation: str, annotation: str | None = None):
        if not relation:
            raise QueryError("query needs a relation name")
        self.relation = relation
        self.annotation = annotation

    def annotated(self, annotation: str) -> "UpdateQuery":
        """A copy of this query carrying ``annotation``."""
        raise NotImplementedError

    def _check_annotation(self) -> str:
        if self.annotation is None:
            raise QueryError(
                f"query {self!r} has no annotation; wrap it in a Transaction or "
                "use .annotated(p)"
            )
        return self.annotation


class Insert(UpdateQuery):
    """``R+,p(t):-`` — insert the constant tuple ``t``."""

    __slots__ = ("row",)

    kind = "insert"

    def __init__(self, relation: str, row: Sequence[object], annotation: str | None = None):
        super().__init__(relation, annotation)
        self.row = tuple(row)

    @classmethod
    def values(
        cls,
        relation: Relation,
        row: Mapping[str, object] | Sequence[object],
        annotation: str | None = None,
    ) -> "Insert":
        """Name-based builder; ``row`` may be a mapping or a full tuple."""
        if isinstance(row, Mapping):
            missing = [a for a in relation.attributes if a not in row]
            if missing:
                raise QueryError(f"insert into {relation.name!r} misses attributes {missing}")
            values = tuple(row[a] for a in relation.attributes)
        else:
            values = relation.check_row(row)
        return cls(relation.name, values, annotation)

    def annotated(self, annotation: str) -> "Insert":
        return Insert(self.relation, self.row, annotation)

    def __repr__(self) -> str:
        p = f",{self.annotation}" if self.annotation else ""
        return f"{self.relation}+{p}{self.row!r}"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Insert):
            return NotImplemented
        return (
            self.relation == other.relation
            and self.row == other.row
            and self.annotation == other.annotation
        )

    def __hash__(self) -> int:
        return hash((self.relation, self.row, self.annotation))


class Delete(UpdateQuery):
    """``R-,p(u):-`` — delete all tuples satisfying the pattern ``u``."""

    __slots__ = ("pattern",)

    kind = "delete"

    def __init__(self, relation: str, pattern: Pattern, annotation: str | None = None):
        super().__init__(relation, annotation)
        self.pattern = pattern

    @classmethod
    def where(
        cls,
        relation: Relation,
        where: Mapping[str, object] | None = None,
        where_not: Mapping[str, object | Iterable[object]] | None = None,
        annotation: str | None = None,
    ) -> "Delete":
        return cls(relation.name, Pattern.build(relation, where, where_not), annotation)

    def annotated(self, annotation: str) -> "Delete":
        return Delete(self.relation, self.pattern, annotation)

    def __repr__(self) -> str:
        p = f",{self.annotation}" if self.annotation else ""
        return f"{self.relation}-{p}[{self.pattern.describe()}]"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Delete):
            return NotImplemented
        return (
            self.relation == other.relation
            and self.pattern == other.pattern
            and self.annotation == other.annotation
        )

    def __hash__(self) -> int:
        return hash((self.relation, self.pattern, self.annotation))


class Modify(UpdateQuery):
    """``RM,p(u1, u2):-`` — update all tuples satisfying ``u1``.

    ``assignments`` maps attribute positions to the constants ``u2``
    prescribes; unassigned positions keep their value (``u1_i = u2_i``).
    """

    __slots__ = ("pattern", "assignments", "_assignment_items")

    kind = "modify"

    def __init__(
        self,
        relation: str,
        pattern: Pattern,
        assignments: Mapping[int, object],
        annotation: str | None = None,
    ):
        super().__init__(relation, annotation)
        if not assignments:
            raise QueryError("modification must assign at least one attribute")
        for i in assignments:
            if not 0 <= i < pattern.arity:
                raise QueryError(f"assignment position {i} out of range for arity {pattern.arity}")
        # Canonicalize: assigning a position to the very constant the
        # pattern pins it to is a no-op; drop such assignments so that
        # semantically identical queries compare equal.  If *all*
        # assignments were no-ops (an identity modification), keep the
        # canonical self-assignment on the smallest pinned position.
        effective = {i: v for i, v in assignments.items() if pattern.eq.get(i, _MISSING) != v}
        if not effective:
            anchor = min(pattern.eq)
            effective = {anchor: pattern.eq[anchor]}
        self.pattern = pattern
        self.assignments = effective
        self._assignment_items = tuple(self.assignments.items())

    @classmethod
    def set(
        cls,
        relation: Relation,
        set_values: Mapping[str, object],
        where: Mapping[str, object] | None = None,
        where_not: Mapping[str, object | Iterable[object]] | None = None,
        annotation: str | None = None,
    ) -> "Modify":
        """Name-based builder mirroring ``UPDATE .. SET .. WHERE ..``."""
        pattern = Pattern.build(relation, where, where_not)
        assignments = {relation.index_of(a): v for a, v in set_values.items()}
        return cls(relation.name, pattern, assignments, annotation)

    def annotated(self, annotation: str) -> "Modify":
        return Modify(self.relation, self.pattern, self.assignments, annotation)

    # -- semantics helpers ------------------------------------------------------

    def apply_to_row(self, row: tuple[object, ...]) -> tuple[object, ...]:
        """The image ``t'`` of a matching row ``t`` (paper's ``t ~> t'``)."""
        out = list(row)
        for i, v in self._assignment_items:
            out[i] = v
        return tuple(out)

    @property
    def is_identity(self) -> bool:
        """True if the image always equals the source (``u1 = u2``).

        Holds when every assigned position is pinned by the pattern to the
        assigned constant.
        """
        return all(self.pattern.eq.get(i, _MISSING) == v for i, v in self._assignment_items)

    def image_pattern(self) -> Pattern:
        """The pattern describing the set of images of matching rows.

        Assigned positions become the assigned constants; the remaining
        positions inherit the source pattern's constraints.
        """
        eq = {i: v for i, v in self.pattern.eq.items() if i not in self.assignments}
        eq.update(self.assignments)
        neq = {i: s for i, s in self.pattern.neq.items() if i not in self.assignments}
        return Pattern(self.pattern.arity, eq=eq, neq=neq)

    def compose_assignments(self, later: "Modify") -> dict[int, object]:
        """Assignments of applying ``self`` then ``later`` (later wins)."""
        merged = dict(self.assignments)
        merged.update(later.assignments)
        return merged

    def __repr__(self) -> str:
        p = f",{self.annotation}" if self.annotation else ""
        sets = ", ".join(f"${i}:={v!r}" for i, v in sorted(self.assignments.items()))
        return f"{self.relation}M{p}[{self.pattern.describe()} -> {sets}]"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Modify):
            return NotImplemented
        return (
            self.relation == other.relation
            and self.pattern == other.pattern
            and self.assignments == other.assignments
            and self.annotation == other.annotation
        )

    def __hash__(self) -> int:
        return hash(
            (self.relation, self.pattern, tuple(sorted(self.assignments.items(), key=repr)), self.annotation)
        )


_MISSING = object()


class Transaction:
    """A named sequence of update queries sharing one annotation.

    The paper annotates all queries of a transaction with a single ``p``
    (Section 3.1, "Provenance of a transaction"); the constructor stamps the
    transaction's annotation onto every query.
    """

    __slots__ = ("name", "queries")

    def __init__(self, name: str, queries: Iterable[UpdateQuery]):
        if not name:
            raise QueryError("transaction needs a non-empty name/annotation")
        self.name = name
        self.queries = tuple(q.annotated(name) for q in queries)

    @property
    def annotation(self) -> str:
        return self.name

    def __iter__(self):
        return iter(self.queries)

    def __len__(self) -> int:
        return len(self.queries)

    def __repr__(self) -> str:
        return f"Transaction({self.name!r}, {len(self.queries)} queries)"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Transaction):
            return NotImplemented
        return self.name == other.name and self.queries == other.queries

    def __hash__(self) -> int:
        return hash((self.name, self.queries))
