"""Hyperplane update queries and transactions (paper Section 2)."""

from .pattern import Pattern
from .updates import Delete, Insert, Modify, Transaction, UpdateQuery

__all__ = ["Delete", "Insert", "Modify", "Pattern", "Transaction", "UpdateQuery"]
