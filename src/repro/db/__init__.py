"""Relational database substrate (schemas, rows, plain instances)."""

from .database import Database
from .schema import Relation, Schema

__all__ = ["Database", "Relation", "Schema"]
