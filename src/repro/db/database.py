"""In-memory relational databases (set semantics).

:class:`Database` stores the *plain* (unannotated) contents: per relation a
set of rows.  It is the substrate both for the vanilla no-provenance
executor and for seeding the provenance-tracking executors, which maintain
their own annotation maps on top (paper §6.1: "a hashmap between tuples and
their annotations").
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

from ..errors import SchemaError
from .schema import Relation, Schema

__all__ = ["Database"]


class Database:
    """A schema plus one set of rows per relation."""

    __slots__ = ("schema", "_rows")

    def __init__(self, schema: Schema | None = None):
        self.schema = schema or Schema()
        self._rows: dict[str, set[tuple[object, ...]]] = {r.name: set() for r in self.schema}

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_rows(
        cls,
        name: str,
        attributes: Sequence[str],
        rows: Iterable[Sequence[object]],
    ) -> "Database":
        """A single-relation database (handy in examples and tests)."""
        db = cls(Schema([Relation(name, attributes)]))
        db.extend(name, rows)
        return db

    @classmethod
    def from_dict(
        cls,
        spec: Mapping[str, tuple[Sequence[str], Iterable[Sequence[object]]]],
    ) -> "Database":
        """Database from ``{name: (attributes, rows)}``."""
        schema = Schema(Relation(name, attrs) for name, (attrs, _rows) in spec.items())
        db = cls(schema)
        for name, (_attrs, rows) in spec.items():
            db.extend(name, rows)
        return db

    def add_relation(self, relation: Relation) -> Relation:
        self.schema.add(relation)
        self._rows[relation.name] = set()
        return relation

    # -- mutation -------------------------------------------------------------

    def insert(self, name: str, row: Sequence[object]) -> tuple[object, ...]:
        relation = self.schema.relation(name)
        t = relation.check_row(row)
        self._rows[name].add(t)
        return t

    def extend(self, name: str, rows: Iterable[Sequence[object]]) -> None:
        relation = self.schema.relation(name)
        target = self._rows[name]
        for row in rows:
            target.add(relation.check_row(row))

    def discard(self, name: str, row: Sequence[object]) -> None:
        self._rows[name].discard(self.schema.relation(name).check_row(row))

    # -- access ---------------------------------------------------------------

    def rows(self, name: str) -> set[tuple[object, ...]]:
        """The (mutable) row set of a relation."""
        if name not in self._rows:
            raise SchemaError(f"unknown relation {name!r}")
        return self._rows[name]

    def relation(self, name: str) -> Relation:
        return self.schema.relation(name)

    def __contains__(self, name: str) -> bool:
        return name in self._rows

    def relations(self) -> Iterator[str]:
        return iter(self._rows)

    def total_rows(self) -> int:
        return sum(len(rows) for rows in self._rows.values())

    def copy(self) -> "Database":
        """Deep copy of the contents (rows are immutable, sets are copied)."""
        clone = Database(self.schema)
        for name, rows in self._rows.items():
            clone._rows[name] = set(rows)
        return clone

    # -- comparison -----------------------------------------------------------

    def same_contents(self, other: "Database") -> bool:
        """Set-equivalence of instances, relation by relation (paper's ≡)."""
        names = set(self._rows)
        if names != set(other._rows):
            return False
        return all(self._rows[name] == other._rows[name] for name in names)

    def diff(self, other: "Database") -> dict[str, tuple[set, set]]:
        """Per-relation ``(only_self, only_other)`` row sets (debugging)."""
        out: dict[str, tuple[set, set]] = {}
        for name in set(self._rows) | set(other._rows):
            mine = self._rows.get(name, set())
            theirs = other._rows.get(name, set())
            if mine != theirs:
                out[name] = (mine - theirs, theirs - mine)
        return out

    def __repr__(self) -> str:
        sizes = ", ".join(f"{name}:{len(rows)}" for name, rows in self._rows.items())
        return f"Database({sizes})"
