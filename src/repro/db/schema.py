"""Relational schemas.

Plain structural metadata: a :class:`Relation` is a named attribute list, a
:class:`Schema` a collection of relations.  Values are arbitrary hashable
Python objects (the paper's domain ``V`` is an abstract infinite set); rows
are plain tuples, which keeps the hot matching loops allocation-free.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

from ..errors import SchemaError

__all__ = ["Relation", "Schema"]


class Relation:
    """A relation name with its ordered attribute list."""

    __slots__ = ("name", "attributes", "_index")

    def __init__(self, name: str, attributes: Sequence[str]):
        if not name:
            raise SchemaError("relation name must be non-empty")
        attrs = tuple(attributes)
        if not attrs:
            raise SchemaError(f"relation {name!r} needs at least one attribute")
        if len(set(attrs)) != len(attrs):
            raise SchemaError(f"relation {name!r} has duplicate attributes: {attrs}")
        self.name = name
        self.attributes = attrs
        self._index = {attr: i for i, attr in enumerate(attrs)}

    @property
    def arity(self) -> int:
        return len(self.attributes)

    def index_of(self, attribute: str) -> int:
        """Position of ``attribute``; raises :class:`SchemaError` if unknown."""
        try:
            return self._index[attribute]
        except KeyError:
            raise SchemaError(
                f"relation {self.name!r} has no attribute {attribute!r} "
                f"(attributes: {', '.join(self.attributes)})"
            ) from None

    def check_row(self, row: Sequence[object]) -> tuple[object, ...]:
        """Validate arity and return the row as a hashable tuple."""
        t = tuple(row)
        if len(t) != self.arity:
            raise SchemaError(
                f"row {t!r} has arity {len(t)}, relation {self.name!r} expects {self.arity}"
            )
        return t

    def row_dict(self, row: Sequence[object]) -> dict[str, object]:
        """The row as an attribute→value mapping (display / debugging)."""
        return dict(zip(self.attributes, row))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self.name == other.name and self.attributes == other.attributes

    def __hash__(self) -> int:
        return hash((self.name, self.attributes))

    def __repr__(self) -> str:
        return f"Relation({self.name}({', '.join(self.attributes)}))"


class Schema:
    """A set of relations, indexed by name."""

    __slots__ = ("_relations",)

    def __init__(self, relations: Iterable[Relation] = ()):
        self._relations: dict[str, Relation] = {}
        for relation in relations:
            self.add(relation)

    def add(self, relation: Relation) -> Relation:
        if relation.name in self._relations:
            raise SchemaError(f"duplicate relation {relation.name!r}")
        self._relations[relation.name] = relation
        return relation

    def relation(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(
                f"unknown relation {name!r} (known: {', '.join(sorted(self._relations)) or 'none'})"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[Relation]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self._relations)

    @classmethod
    def build(cls, spec: Mapping[str, Sequence[str]]) -> "Schema":
        """Schema from ``{relation_name: [attr, ...]}``."""
        return cls(Relation(name, attrs) for name, attrs in spec.items())

    def __repr__(self) -> str:
        return f"Schema({', '.join(self._relations)})"
