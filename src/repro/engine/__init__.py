"""Provenance-tracking update engine and policy executors."""

from .engine import Engine, POLICIES, make_executor
from .executors import (
    AnnotatedExecutor,
    Executor,
    NaiveExecutor,
    NormalFormExecutor,
    VanillaExecutor,
)
from .stats import EngineStats

__all__ = [
    "AnnotatedExecutor",
    "Engine",
    "EngineStats",
    "Executor",
    "NaiveExecutor",
    "NormalFormExecutor",
    "POLICIES",
    "VanillaExecutor",
    "make_executor",
]
