"""Query executors: vanilla evaluation and the two provenance policies.

Three executors implement the paper's three main configurations:

* :class:`VanillaExecutor` — "No provenance": set semantics with physical
  deletes, the baseline of Figures 7b/8b;
* :class:`NaiveExecutor` — "No axioms": the literal Section 3.1
  construction.  Tuples are tombstoned, never removed, and annotations are
  raw UP[X] expressions that only the zero axioms simplify (worst-case
  exponential, Proposition 5.1);
* :class:`NormalFormExecutor` — "Normal form": identical matching
  semantics, but annotations are maintained as Theorem 5.3 shapes with the
  Figure 6 rules applied incrementally after every update.

All of them sit on one shared storage layer, the
:class:`~repro.store.annotation_store.AnnotationStore`: stable row ids,
annotation slots, liveness bits, and per-column indexes maintained on
every insertion and removal.  Row selection for deletions and
modifications goes through the store's pattern planner — match cost is
proportional to the matched rows, not the relation size, with a
guaranteed linear-scan fallback — so no executor hand-rolls its own
row-set/annotation-dict bookkeeping or scans relations wholesale.

A detail that is easy to miss in the paper but visible in its Figure 4: the
annotated semantics applies updates to every tuple with a *non-zero
annotation*, including tombstones (that is how the tombstone
``(p1 +M (p3 *M p)) - p`` becomes a modification source under ``p'``).
The store searches the whole support accordingly.  Real set-semantics
liveness is tracked separately per row so that the vanilla result can
always be recovered exactly (and is cross-checked in tests): a
modification target is *live* iff it was live and not modified away, or
some live source mapped onto it.
"""

from __future__ import annotations

from typing import Callable, Iterator, Sequence

from ..core.arena import ExprArena
from ..core.expr import Expr, ZERO, minus, plus_i, plus_m, ssum, times_m, var
from ..core.normal_form import Contribution, NormalForm
from ..core.normalize import normalize_expr
from ..db.database import Database
from ..errors import EngineError
from ..queries.updates import Delete, Insert, Modify, UpdateQuery
from ..store.annotation_store import AnnotationStore, RelationStore

__all__ = [
    "Executor",
    "VanillaExecutor",
    "NaiveExecutor",
    "NormalFormExecutor",
    "BatchNormalFormExecutor",
    "AnnotatedExecutor",
]


class Executor:
    """Interface every policy executor implements."""

    #: registry name, e.g. ``"naive"``; subclasses override.
    policy = "abstract"
    #: whether the executor maintains provenance annotations.
    tracks_provenance = True

    def apply(self, query: UpdateQuery) -> tuple[int, int]:
        """Apply one query; returns ``(rows matched, rows created)``."""
        if isinstance(query, Insert):
            return self.apply_insert(query)
        if isinstance(query, Delete):
            return self.apply_delete(query)
        if isinstance(query, Modify):
            return self.apply_modify(query)
        raise EngineError(f"unknown query type {type(query).__name__}")

    def apply_batch(self, queries: Sequence[UpdateQuery]) -> tuple[int, int]:
        """Apply a single-relation run of queries; returns summed (matched, created).

        Selection already runs through the store's maintained indexes for
        every single query, so a run needs no throwaway per-run index: the
        batched pipeline's remaining leverage is deferred work at run and
        transaction boundaries (see :class:`BatchNormalFormExecutor`).
        Execution is query-by-query in run order, so results are
        bit-identical to sequential application by construction.
        """
        queries = list(queries)
        if queries and any(q.relation != queries[0].relation for q in queries[1:]):
            raise EngineError("apply_batch requires queries on a single relation")
        matched = created = 0
        for query in queries:
            m, c = self.apply(query)
            matched += m
            created += c
        return (matched, created)

    def apply_insert(self, query: Insert) -> tuple[int, int]:
        raise NotImplementedError

    def apply_delete(self, query: Delete) -> tuple[int, int]:
        raise NotImplementedError

    def apply_modify(self, query: Modify) -> tuple[int, int]:
        raise NotImplementedError

    def on_transaction_end(self, name: str) -> None:
        """Hook invoked after a whole :class:`Transaction` was applied."""

    # -- inspection -----------------------------------------------------------

    def live_rows(self, relation: str) -> set[tuple[object, ...]]:
        raise NotImplementedError

    def result(self) -> Database:
        """The live contents as a plain database (standard set semantics)."""
        raise NotImplementedError

    def support_count(self) -> int:
        """Number of stored rows including tombstones."""
        raise NotImplementedError

    def live_count(self) -> int:
        raise NotImplementedError

    def provenance_size(self) -> int:
        """Total expanded provenance size over all stored rows.

        Counts every annotation as a *tree* (shared sub-expressions with
        multiplicity) — the formula-length metric of Proposition 5.1.  May
        be astronomically large for the naive policy; it is computed with
        memoized big-int arithmetic, never by materializing the tree.
        """
        return 0

    def provenance_dag_size(self) -> int:
        """Total *stored* provenance size: distinct expression nodes.

        Shared sub-expressions count once across the whole database.  This
        is what an implementation holding annotations as objects (like the
        paper's Python prototype, and like this one) physically keeps in
        memory, and the metric the Section 6 memory-overhead figures use.
        """
        return 0

    def provenance_items(self, relation: str) -> Iterator[tuple[tuple, Expr, bool]]:
        """Yields ``(row, expression, live)`` for every stored row."""
        raise NotImplementedError

    def annotation_of(self, relation: str, row: tuple) -> Expr:
        """The annotation of one stored row (``0`` if never stored).

        Generic fallback: a provenance scan.  Store-backed executors
        override this with an O(1) probe of the row-keyed index.
        """
        target = tuple(row)
        for stored, expr, _live in self.provenance_items(relation):
            if stored == target:
                return expr
        return ZERO

    def tuple_var(self, relation: str, row: tuple) -> str | None:
        """The base annotation name assigned to an initial row, if any."""
        return None

    def tuple_var_names(self) -> frozenset[str]:
        """All annotation names assigned to initial rows."""
        return frozenset()


class StoreBackedExecutor(Executor):
    """Common plumbing of every executor sitting on an :class:`AnnotationStore`.

    Alongside the store, every subclass participates in the *delta hook*:
    when :attr:`delta_sink` is set (see
    :func:`repro.views.deltas.attach_delta_sink`), each support mutation
    is mirrored into the sink through :meth:`_emit` — the row-level
    vocabulary live views are maintained from.  Executors whose slots
    have no ``UP[X]`` expression form set :attr:`emits_deltas` to False
    and are rejected at attach time.
    """

    #: the attached :class:`~repro.views.deltas.DeltaBuffer`, or ``None``.
    delta_sink = None
    #: whether :meth:`_emit` produces a faithful row-delta stream.
    emits_deltas = True

    def __init__(self, database: Database, use_indexes: bool = True, arena: bool = False):
        self.schema = database.schema
        self.store = AnnotationStore(
            database.schema,
            use_indexes=use_indexes,
            arena=ExprArena() if arena else None,
        )

    def _relation_store(self, name: str) -> RelationStore:
        return self.store.relation(name)

    def live_rows(self, relation: str) -> set[tuple[object, ...]]:
        return self.store.live_rows(relation)

    def result(self) -> Database:
        db = Database(self.schema)
        for name, _store in self.store.relations():
            db.extend(name, self.store.live_rows(name))
        return db

    def support_count(self) -> int:
        return self.store.support_count()

    def live_count(self) -> int:
        return self.store.live_count()

    def annotation_of(self, relation: str, row: tuple) -> Expr:
        """O(1) probe of the row-keyed index instead of a provenance scan.

        Bit-identical to the generic scan: the probe hits exactly the slot
        the scan would find (rows are unique in the support) and maps its
        annotation through the same ``_expr_of`` hook.
        """
        rows = self._relation_store(relation).rows
        rid = rows.rid_of(tuple(row))
        if rid is None:
            return ZERO
        ann = rows.annotation(rid)
        return ZERO if ann is None else self._expr_of(ann)

    def _expr_of(self, ann: object) -> Expr:
        """Map a stored annotation slot to its UP[X] expression.

        The vanilla executor stores no annotations (every slot is
        ``None``, handled above); annotated executors override this.
        """
        return ZERO

    def _emit(
        self, kind: str, relation: str, row: tuple, ann: object | None, live: bool
    ) -> None:
        """Mirror one support mutation into the attached delta sink.

        ``ann`` is the *stored* slot value; it is mapped through
        :meth:`_expr_of` here so the sink always holds interned ``Expr``
        objects (or ``None`` for annotation-free policies), whatever the
        executor's at-rest representation.
        """
        sink = self.delta_sink
        if sink is not None:
            sink.record(
                kind, relation, row, None if ann is None else self._expr_of(ann), live
            )


class VanillaExecutor(StoreBackedExecutor):
    """Set semantics, physical deletes, no annotations ("No provenance").

    Rows live in the same indexed store the annotated executors use (with
    empty annotation slots) — so runtime comparisons against the
    provenance policies measure provenance work, not a container artifact.
    Deletions and modification sources *free* their rows: the vanilla
    support is exactly the live database.
    """

    policy = "none"
    tracks_provenance = False

    def __init__(self, database: Database, use_indexes: bool = True, arena: bool = False):
        super().__init__(database, use_indexes, arena=arena)
        for name in database.relations():
            store = self.store.relation(name)
            for row in database.rows(name):
                store.add(row, None, True)

    def apply_insert(self, query: Insert) -> tuple[int, int]:
        store = self._relation_store(query.relation)
        row = self.schema.relation(query.relation).check_row(query.row)
        if store.rows.rid_of(row) is not None:
            return (0, 0)
        store.add(row, None, True)
        self._emit("insert", query.relation, row, None, True)
        return (0, 1)

    def apply_delete(self, query: Delete) -> tuple[int, int]:
        store = self._relation_store(query.relation)
        matched = store.matching(query.pattern)
        for rid, row in matched:
            store.free(rid)
            self._emit("free", query.relation, row, None, False)
        return (len(matched), 0)

    def apply_modify(self, query: Modify) -> tuple[int, int]:
        store = self._relation_store(query.relation)
        matched = store.matching(query.pattern)
        images = dict.fromkeys(query.apply_to_row(row) for _rid, row in matched)
        for rid, row in matched:
            store.free(rid)
            self._emit("free", query.relation, row, None, False)
        created = 0
        for image in images:
            if store.rows.rid_of(image) is None:
                store.add(image, None, True)
                self._emit("insert", query.relation, image, None, True)
                created += 1
        return (len(matched), created)

    def provenance_items(self, relation: str) -> Iterator[tuple[tuple, Expr, bool]]:
        for _rid, row in self._relation_store(relation).items():
            yield row, ZERO, True


class AnnotatedExecutor(StoreBackedExecutor):
    """Shared machinery of the naive and normal-form policies.

    Subclasses provide the annotation algebra through five hooks
    (:meth:`_initial`, :meth:`_insert_ann`, :meth:`_delete_ann`,
    :meth:`_contribution`, :meth:`_absorb`) plus :meth:`_expr_of`; rows,
    liveness and selection all live in the shared store.  Tuples are
    tombstoned (``live = False``), never freed — updates match the whole
    support.
    """

    def __init__(
        self,
        database: Database,
        annotate: Callable[[str, tuple, int], str] | None = None,
        use_indexes: bool = True,
        arena: bool = False,
    ):
        super().__init__(database, use_indexes, arena=arena)
        self._tuple_vars: dict[str, dict[tuple, str]] = {}
        namer = annotate or (lambda rel, row, i: f"x{i}")
        counter = 0
        for name in database.relations():
            store = self.store.relation(name)
            names: dict[tuple, str] = {}
            for row in sorted(database.rows(name), key=repr):
                counter += 1
                ann_name = namer(name, row, counter)
                names[row] = ann_name
                store.add(row, self._initial(ann_name), True)
            self._tuple_vars[name] = names

    # -- algebra hooks --------------------------------------------------------

    def _initial(self, ann_name: str) -> object:
        raise NotImplementedError

    def _insert_ann(self, ann: object | None, p: Expr) -> object:
        raise NotImplementedError

    def _delete_ann(self, ann: object, p: Expr) -> object:
        raise NotImplementedError

    def _contribution(self, ann: object, p: Expr) -> object:
        raise NotImplementedError

    def _merge(self, contributions: list[object]) -> object:
        raise NotImplementedError

    def _absorb(self, ann: object | None, contribution: object, p: Expr) -> object:
        raise NotImplementedError

    def _expr_of(self, ann: object) -> Expr:
        raise NotImplementedError

    # -- query application ------------------------------------------------------

    def apply_insert(self, query: Insert) -> tuple[int, int]:
        store = self._relation_store(query.relation)
        row = self.schema.relation(query.relation).check_row(query.row)
        p = var(query._check_annotation())
        rows = store.rows
        rid = rows.rid_of(row)
        if rid is None:
            ann = self._insert_ann(None, p)
            store.add(row, ann, True)
            self._emit("insert", query.relation, row, ann, True)
            return (0, 1)
        ann = self._insert_ann(rows.annotation(rid), p)
        rows.set_annotation(rid, ann)
        rows.set_live(rid, True)
        self._emit("annotation", query.relation, row, ann, True)
        return (0, 0)

    def apply_delete(self, query: Delete) -> tuple[int, int]:
        store = self._relation_store(query.relation)
        p = var(query._check_annotation())
        matched = store.matching(query.pattern)
        rows = store.rows
        for rid, row in matched:
            ann = self._delete_ann(rows.annotation(rid), p)
            rows.set_annotation(rid, ann)
            rows.set_live(rid, False)
            self._emit("delete", query.relation, row, ann, False)
        return (len(matched), 0)

    def apply_modify(self, query: Modify) -> tuple[int, int]:
        store = self._relation_store(query.relation)
        # Phase 1: select sources over the whole support (tombstones
        # included), through the planner.
        matched = store.matching(query.pattern)
        return self._modify_matched(store, matched, query)

    def _modify_matched(
        self,
        store: RelationStore,
        matched: list[tuple[int, tuple]],
        query: Modify,
    ) -> tuple[int, int]:
        """Phases 2/3 of a modification over pre-matched (rid, row) pairs."""
        p = var(query._check_annotation())
        rows = store.rows
        # Collect the *pre-state* contributions of the matched sources.
        by_target: dict[tuple, list[object]] = {}
        live_target: dict[tuple, bool] = {}
        for rid, row in matched:
            target = query.apply_to_row(row)
            by_target.setdefault(target, []).append(
                self._contribution(rows.annotation(rid), p)
            )
            live_target[target] = live_target.get(target, False) or rows.is_live(rid)
        # Phase 2: sources are modified away (deleted).
        for rid, row in matched:
            ann = self._delete_ann(rows.annotation(rid), p)
            rows.set_annotation(rid, ann)
            rows.set_live(rid, False)
            self._emit("delete", query.relation, row, ann, False)
        # Phase 3: targets absorb the merged contributions.
        created = 0
        for target, contributions in by_target.items():
            merged = self._merge(contributions)
            rid = rows.rid_of(target)
            if rid is None:
                ann = self._absorb(None, merged, p)
                if self._expr_of(ann).is_zero and not live_target[target]:
                    # All sources were deleted under this very annotation:
                    # the target's annotation is 0, i.e. it never enters the
                    # support (Rule 3 firing on an absent target).
                    continue
                store.add(target, ann, live_target[target])
                self._emit("insert", query.relation, target, ann, live_target[target])
                created += 1
            else:
                ann = self._absorb(rows.annotation(rid), merged, p)
                live = rows.is_live(rid) or live_target[target]
                rows.set_annotation(rid, ann)
                rows.set_live(rid, live)
                self._emit("annotation", query.relation, target, ann, live)
        return (len(matched), created)

    # -- inspection ---------------------------------------------------------------

    def provenance_size(self) -> int:
        return sum(
            self._expr_of(ann).size()
            for name, _store in self.store.relations()
            for _row, ann, _live in self.store.items(name)
        )

    def provenance_dag_size(self) -> int:
        seen: set[int] = set()
        stack: list[Expr] = []
        for name, _store in self.store.relations():
            for _row, ann, _live in self.store.items(name):
                root = self._expr_of(ann)
                if id(root) not in seen:
                    stack.append(root)
                # One shared visited set across all rows: shared sub-DAGs are
                # neither re-counted nor re-traversed.
                while stack:
                    node = stack.pop()
                    if id(node) in seen:
                        continue
                    seen.add(id(node))
                    stack.extend(c for c in node.children if id(c) not in seen)
        return len(seen)

    def provenance_items(self, relation: str) -> Iterator[tuple[tuple, Expr, bool]]:
        for row, ann, live in self.store.items(relation):
            yield row, self._expr_of(ann), live

    def tuple_var(self, relation: str, row: tuple) -> str | None:
        return self._tuple_vars.get(relation, {}).get(tuple(row))

    def tuple_var_names(self) -> frozenset[str]:
        return frozenset(
            name for names in self._tuple_vars.values() for name in names.values()
        )


class NaiveExecutor(AnnotatedExecutor):
    """The literal Section 3.1 construction ("No axioms")."""

    policy = "naive"

    def _initial(self, ann_name: str) -> Expr:
        return var(ann_name)

    def _insert_ann(self, ann: Expr | None, p: Expr) -> Expr:
        return plus_i(ann if ann is not None else ZERO, p)

    def _delete_ann(self, ann: Expr, p: Expr) -> Expr:
        return minus(ann, p)

    def _contribution(self, ann: Expr, p: Expr) -> Expr:
        return ann

    def _merge(self, contributions: list[Expr]) -> Expr:
        return ssum(contributions)

    def _absorb(self, ann: Expr | None, contribution: Expr, p: Expr) -> Expr:
        return plus_m(ann if ann is not None else ZERO, times_m(contribution, p))

    def _expr_of(self, ann: Expr) -> Expr:
        return ann


class NormalFormExecutor(AnnotatedExecutor):
    """Incremental Theorem 5.3 normal forms ("Normal form")."""

    policy = "normal_form"

    def _initial(self, ann_name: str) -> NormalForm:
        return NormalForm.untouched(var(ann_name))

    def _insert_ann(self, ann: NormalForm | None, p: Expr) -> NormalForm:
        return (ann if ann is not None else NormalForm.absent()).on_insert(p)

    def _delete_ann(self, ann: NormalForm, p: Expr) -> NormalForm:
        return ann.on_delete(p)

    def _contribution(self, ann: NormalForm, p: Expr) -> Contribution:
        return ann.contribution(p)

    def _merge(self, contributions: list[Contribution]) -> Contribution:
        acc = Contribution()
        for c in contributions:
            acc = acc.merge(c)
        return acc

    def _absorb(
        self, ann: NormalForm | None, contribution: Contribution, p: Expr
    ) -> NormalForm:
        return (ann if ann is not None else NormalForm.absent()).absorb(contribution, p)

    def _expr_of(self, ann: NormalForm) -> Expr:
        return ann.to_expr()


class BatchNormalFormExecutor(NaiveExecutor):
    """Normal forms with batch-deferred rewriting ("Normal form, batched").

    During a run of updates annotations accumulate through the *naive*
    Section 3.1 construction — O(1) smart-constructor appends per touched
    row, no per-update rule application — and the Theorem 5.3 rewrite runs
    once per :meth:`flush`: at transaction boundaries and before any
    provenance is observed.  The flush uses the memoized replay normalizer
    (:func:`repro.core.normalize.normalize_expr`), so bases shared across
    rows and layers already normalized by earlier flushes are not rewritten
    again — the amortized regime of Berkholz-style update processing.

    The flushed annotation of a row is UP[X]-equivalent to what
    :class:`NormalFormExecutor` maintains incrementally (both implement the
    Figure 6 rules), and of the same linear size bound.
    """

    policy = "normal_form_batch"

    def flush(self) -> None:
        """Rewrite every stored annotation into its normal form, once.

        Rows whose annotation normalizes to ``0`` and that are dead are
        dropped from the support: they are modification targets all of
        whose sources were deleted under the same annotation (Rule 3), the
        rows the incremental executor never creates in the first place.  A
        live row can never normalize to ``0`` (Proposition 4.2: liveness is
        the all-true Boolean valuation of the annotation).
        """
        for name, store in self.store.relations():
            rows = store.rows
            dead_zero: list[tuple[int, tuple]] = []
            for rid, row in rows.items():
                old = rows.annotation(rid)
                ann = normalize_expr(old)
                if ann is not old:
                    rows.set_annotation(rid, ann)
                    # Normalization over the hash-consed DAG is pure: an
                    # already-normal annotation comes back as the identical
                    # interned object, so only genuine rewrites reach the
                    # delta sink (a flush must not spam O(support) deltas).
                    self._emit("annotation", name, row, ann, rows.is_live(rid))
                if ann.is_zero and not rows.is_live(rid):
                    dead_zero.append((rid, row))
            for rid, row in dead_zero:
                store.free(rid)
                self._emit("free", name, row, None, False)

    def on_transaction_end(self, name: str) -> None:
        self.flush()

    # Observations must never expose un-normalized intermediates, and the
    # support count must not depend on whether provenance was read first
    # (flushing drops dead zero-annotation rows).

    def provenance_items(self, relation: str) -> Iterator[tuple[tuple, Expr, bool]]:
        self.flush()
        return super().provenance_items(relation)

    def annotation_of(self, relation: str, row: tuple) -> Expr:
        self.flush()
        return super().annotation_of(relation, row)

    def provenance_size(self) -> int:
        self.flush()
        return super().provenance_size()

    def provenance_dag_size(self) -> int:
        self.flush()
        return super().provenance_dag_size()

    def support_count(self) -> int:
        self.flush()
        return super().support_count()
