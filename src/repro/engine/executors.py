"""Query executors: vanilla evaluation and the two provenance policies.

Three executors implement the paper's three main configurations:

* :class:`VanillaExecutor` — "No provenance": set semantics with physical
  deletes, the baseline of Figures 7b/8b;
* :class:`NaiveExecutor` — "No axioms": the literal Section 3.1
  construction.  Tuples are tombstoned, never removed, and annotations are
  raw UP[X] expressions that only the zero axioms simplify (worst-case
  exponential, Proposition 5.1);
* :class:`NormalFormExecutor` — "Normal form": identical matching
  semantics, but annotations are maintained as Theorem 5.3 shapes with the
  Figure 6 rules applied incrementally after every update.

A detail that is easy to miss in the paper but visible in its Figure 4: the
annotated semantics applies updates to every tuple with a *non-zero
annotation*, including tombstones (that is how the tombstone
``(p1 +M (p3 *M p)) - p`` becomes a modification source under ``p'``).
Real set-semantics liveness is tracked separately per row so that the
vanilla result can always be recovered exactly (and is cross-checked in
tests): a modification target is *live* iff it was live and not modified
away, or some live source mapped onto it.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Iterable, Iterator, Sequence

from ..core.expr import Expr, ZERO, minus, plus_i, plus_m, ssum, times_m, var
from ..core.normal_form import Contribution, NormalForm
from ..core.normalize import normalize_expr
from ..db.database import Database
from ..errors import EngineError
from ..queries.pattern import Pattern
from ..queries.updates import Delete, Insert, Modify, UpdateQuery

__all__ = [
    "Executor",
    "VanillaExecutor",
    "NaiveExecutor",
    "NormalFormExecutor",
    "BatchNormalFormExecutor",
    "AnnotatedExecutor",
]


def _hashable(value: object) -> bool:
    try:
        hash(value)
    except TypeError:
        return False
    return True


class Executor:
    """Interface every policy executor implements."""

    #: registry name, e.g. ``"naive"``; subclasses override.
    policy = "abstract"
    #: whether the executor maintains provenance annotations.
    tracks_provenance = True

    def apply(self, query: UpdateQuery) -> tuple[int, int]:
        """Apply one query; returns ``(rows matched, rows created)``."""
        if isinstance(query, Insert):
            return self.apply_insert(query)
        if isinstance(query, Delete):
            return self.apply_delete(query)
        if isinstance(query, Modify):
            return self.apply_modify(query)
        raise EngineError(f"unknown query type {type(query).__name__}")

    def apply_batch(self, queries: Sequence[UpdateQuery]) -> tuple[int, int]:
        """Apply a run of queries as one unit; returns summed (matched, created).

        The default implementation is the sequential loop; executors that
        can fuse a run (single scan, shared index, deferred normalization)
        override this.  The engine only ever passes runs whose queries all
        target one relation.
        """
        matched = created = 0
        for query in queries:
            m, c = self.apply(query)
            matched += m
            created += c
        return (matched, created)

    def apply_insert(self, query: Insert) -> tuple[int, int]:
        raise NotImplementedError

    def apply_delete(self, query: Delete) -> tuple[int, int]:
        raise NotImplementedError

    def apply_modify(self, query: Modify) -> tuple[int, int]:
        raise NotImplementedError

    def on_transaction_end(self, name: str) -> None:
        """Hook invoked after a whole :class:`Transaction` was applied."""

    # -- inspection -----------------------------------------------------------

    def live_rows(self, relation: str) -> set[tuple[object, ...]]:
        raise NotImplementedError

    def result(self) -> Database:
        """The live contents as a plain database (standard set semantics)."""
        raise NotImplementedError

    def support_count(self) -> int:
        """Number of stored rows including tombstones."""
        raise NotImplementedError

    def live_count(self) -> int:
        raise NotImplementedError

    def provenance_size(self) -> int:
        """Total expanded provenance size over all stored rows.

        Counts every annotation as a *tree* (shared sub-expressions with
        multiplicity) — the formula-length metric of Proposition 5.1.  May
        be astronomically large for the naive policy; it is computed with
        memoized big-int arithmetic, never by materializing the tree.
        """
        return 0

    def provenance_dag_size(self) -> int:
        """Total *stored* provenance size: distinct expression nodes.

        Shared sub-expressions count once across the whole database.  This
        is what an implementation holding annotations as objects (like the
        paper's Python prototype, and like this one) physically keeps in
        memory, and the metric the Section 6 memory-overhead figures use.
        """
        return 0

    def provenance_items(self, relation: str) -> Iterator[tuple[tuple, Expr, bool]]:
        """Yields ``(row, expression, live)`` for every stored row."""
        raise NotImplementedError

    def tuple_var(self, relation: str, row: tuple) -> str | None:
        """The base annotation name assigned to an initial row, if any."""
        return None

    def tuple_var_names(self) -> frozenset[str]:
        """All annotation names assigned to initial rows."""
        return frozenset()


class VanillaExecutor(Executor):
    """Set semantics, physical deletes, no annotations ("No provenance").

    Rows live in per-relation dicts (insertion-ordered, value-less) — the
    same container the annotated executors use — so runtime comparisons
    against the provenance policies measure provenance work, not a
    set-vs-dict iteration artifact.
    """

    policy = "none"
    tracks_provenance = False

    def __init__(self, database: Database):
        self.schema = database.schema
        self._rows: dict[str, dict[tuple, None]] = {
            name: dict.fromkeys(database.rows(name)) for name in database.relations()
        }

    def _relation_rows(self, name: str) -> dict[tuple, None]:
        try:
            return self._rows[name]
        except KeyError:
            raise EngineError(f"unknown relation {name!r}") from None

    def apply_insert(self, query: Insert) -> tuple[int, int]:
        rows = self._relation_rows(query.relation)
        row = self.schema.relation(query.relation).check_row(query.row)
        created = 0 if row in rows else 1
        rows[row] = None
        return (0, created)

    def apply_delete(self, query: Delete) -> tuple[int, int]:
        rows = self._relation_rows(query.relation)
        pattern = query.pattern
        matched = [row for row in rows if pattern.matches(row)]
        for row in matched:
            del rows[row]
        return (len(matched), 0)

    def apply_modify(self, query: Modify) -> tuple[int, int]:
        rows = self._relation_rows(query.relation)
        pattern = query.pattern
        matched = [row for row in rows if pattern.matches(row)]
        images = {query.apply_to_row(row) for row in matched}
        for row in matched:
            del rows[row]
        created = sum(1 for image in images if image not in rows)
        rows.update(dict.fromkeys(images))
        return (len(matched), created)

    def live_rows(self, relation: str) -> set[tuple[object, ...]]:
        return set(self._relation_rows(relation))

    def result(self) -> Database:
        db = Database(self.schema)
        for name, rows in self._rows.items():
            db.extend(name, rows)
        return db

    def support_count(self) -> int:
        return sum(len(rows) for rows in self._rows.values())

    def live_count(self) -> int:
        return self.support_count()

    def provenance_items(self, relation: str) -> Iterator[tuple[tuple, Expr, bool]]:
        for row in self._relation_rows(relation):
            yield row, ZERO, True


class _RowState:
    """Mutable per-row state of an annotated executor."""

    __slots__ = ("ann", "live")

    def __init__(self, ann: object, live: bool):
        self.ann = ann
        self.live = live


class AnnotatedExecutor(Executor):
    """Shared machinery of the naive and normal-form policies.

    Subclasses provide the annotation algebra through five hooks
    (:meth:`_initial`, :meth:`_insert_ann`, :meth:`_delete_ann`,
    :meth:`_contribution`, :meth:`_absorb`) plus :meth:`_expr_of`.
    """

    def __init__(
        self,
        database: Database,
        annotate: Callable[[str, tuple, int], str] | None = None,
    ):
        self.schema = database.schema
        self._states: dict[str, dict[tuple, _RowState]] = {}
        self._tuple_vars: dict[str, dict[tuple, str]] = {}
        namer = annotate or (lambda rel, row, i: f"x{i}")
        counter = 0
        for name in database.relations():
            states: dict[tuple, _RowState] = {}
            names: dict[tuple, str] = {}
            for row in sorted(database.rows(name), key=repr):
                counter += 1
                ann_name = namer(name, row, counter)
                names[row] = ann_name
                states[row] = _RowState(self._initial(ann_name), True)
            self._states[name] = states
            self._tuple_vars[name] = names

    # -- algebra hooks --------------------------------------------------------

    def _initial(self, ann_name: str) -> object:
        raise NotImplementedError

    def _insert_ann(self, ann: object | None, p: Expr) -> object:
        raise NotImplementedError

    def _delete_ann(self, ann: object, p: Expr) -> object:
        raise NotImplementedError

    def _contribution(self, ann: object, p: Expr) -> object:
        raise NotImplementedError

    def _merge(self, contributions: list[object]) -> object:
        raise NotImplementedError

    def _absorb(self, ann: object | None, contribution: object, p: Expr) -> object:
        raise NotImplementedError

    def _expr_of(self, ann: object) -> Expr:
        raise NotImplementedError

    # -- query application ------------------------------------------------------

    def _relation_states(self, name: str) -> dict[tuple, _RowState]:
        try:
            return self._states[name]
        except KeyError:
            raise EngineError(f"unknown relation {name!r}") from None

    def apply_insert(self, query: Insert) -> tuple[int, int]:
        states = self._relation_states(query.relation)
        row = self.schema.relation(query.relation).check_row(query.row)
        return self._insert_checked(query, row, states)

    def _insert_checked(
        self, query: Insert, row: tuple, states: dict[tuple, _RowState]
    ) -> tuple[int, int]:
        p = var(query._check_annotation())
        state = states.get(row)
        created = 0
        if state is None:
            states[row] = _RowState(self._insert_ann(None, p), True)
            created = 1
        else:
            state.ann = self._insert_ann(state.ann, p)
            state.live = True
        return (0, created)

    def apply_delete(self, query: Delete) -> tuple[int, int]:
        states = self._relation_states(query.relation)
        p = var(query._check_annotation())
        pattern = query.pattern
        matched = 0
        for row, state in states.items():
            if pattern.matches(row):
                state.ann = self._delete_ann(state.ann, p)
                state.live = False
                matched += 1
        return (matched, 0)

    def apply_modify(self, query: Modify) -> tuple[int, int]:
        states = self._relation_states(query.relation)
        pattern = query.pattern
        # Phase 1: select sources over the whole support (tombstones
        # included); phases 2/3 are shared with the batched path.
        matched = [(row, state) for row, state in states.items() if pattern.matches(row)]
        return self._modify_matched(states, matched, query)

    def _modify_matched(
        self,
        states: dict[tuple, _RowState],
        matched: list[tuple[tuple, _RowState]],
        query: Modify,
        on_created: Callable[[tuple, _RowState], None] | None = None,
    ) -> tuple[int, int]:
        """Phases 2/3 of a modification over pre-matched (row, state) pairs.

        ``on_created`` is invoked for every freshly created target row — the
        batched path uses it to keep its selection index current.
        """
        p = var(query._check_annotation())
        # Collect the *pre-state* contributions of the matched sources.
        by_target: dict[tuple, list[object]] = {}
        live_target: dict[tuple, bool] = {}
        for row, state in matched:
            target = query.apply_to_row(row)
            by_target.setdefault(target, []).append(self._contribution(state.ann, p))
            live_target[target] = live_target.get(target, False) or state.live
        # Phase 2: sources are modified away (deleted).
        for _row, state in matched:
            state.ann = self._delete_ann(state.ann, p)
            state.live = False
        # Phase 3: targets absorb the merged contributions.
        created = 0
        for target, contributions in by_target.items():
            merged = self._merge(contributions)
            state = states.get(target)
            if state is None:
                ann = self._absorb(None, merged, p)
                if self._expr_of(ann).is_zero and not live_target[target]:
                    # All sources were deleted under this very annotation:
                    # the target's annotation is 0, i.e. it never enters the
                    # support (Rule 3 firing on an absent target).
                    continue
                state = _RowState(ann, False)
                states[target] = state
                created += 1
                if on_created is not None:
                    on_created(target, state)
            else:
                state.ann = self._absorb(state.ann, merged, p)
            state.live = state.live or live_target[target]
        return (len(matched), created)

    # -- batched application ----------------------------------------------------

    def apply_batch(self, queries: Sequence[UpdateQuery]) -> tuple[int, int]:
        """Apply a single-relation run of queries as one fused, indexed pass.

        Hyperplane deletions and modifications select rows by per-attribute
        constraints, so a run of them can share a one-column hash index
        built in a single scan of the support: each query then touches only
        the rows holding its selected constant instead of re-scanning the
        whole relation — O(|support| + Σ touched) instead of
        O(n_queries × |support|).  The index stays exact for the whole run
        because annotated executors never physically remove rows; rows
        created mid-run (insertions, modification targets) are appended.

        Execution order is identical to the sequential path — per query, in
        run order, with candidate rows visited in support order — so the
        resulting states and provenance expressions are bit-identical to
        ``for q in queries: self.apply(q)``.
        """
        queries = list(queries)
        if not queries:
            return (0, 0)
        relation = queries[0].relation
        if any(q.relation != relation for q in queries[1:]):
            raise EngineError("apply_batch requires queries on a single relation")
        if len(queries) == 1:
            return self.apply(queries[0])
        states = self._relation_states(relation)
        col = self._fusion_column(queries)
        if col is None:
            return super().apply_batch(queries)
        index: dict[object, list[tuple[tuple, _RowState]]] = {}
        for row, state in states.items():
            index.setdefault(row[col], []).append((row, state))

        def indexed(target: tuple, state: _RowState) -> None:
            index.setdefault(target[col], []).append((target, state))

        total_matched = total_created = 0
        for query in queries:
            if isinstance(query, Insert):
                row = self.schema.relation(relation).check_row(query.row)
                m, c = self._insert_checked(query, row, states)
                if c:
                    indexed(row, states[row])
            else:
                pattern = query.pattern
                if col in pattern.eq and _hashable(pattern.eq[col]):
                    candidates = index.get(pattern.eq[col], ())
                else:
                    candidates = list(states.items())
                matched = [(row, state) for row, state in candidates if pattern.matches(row)]
                if isinstance(query, Delete):
                    p = var(query._check_annotation())
                    for _row, state in matched:
                        state.ann = self._delete_ann(state.ann, p)
                        state.live = False
                    m, c = len(matched), 0
                else:
                    m, c = self._modify_matched(states, matched, query, on_created=indexed)
            total_matched += m
            total_created += c
        return (total_matched, total_created)

    @staticmethod
    def _fusion_column(queries: Sequence[UpdateQuery]) -> int | None:
        """The attribute position to index a run on, or ``None``.

        Picks the position that appears as an equality constraint in the
        most deletion/modification patterns of the run; indexing only pays
        once it replaces at least two full scans.  Unhashable constants
        (patterns accept them; they simply match nothing) cannot be index
        keys and count as full scans.
        """
        counts: Counter[int] = Counter()
        for query in queries:
            if isinstance(query, (Delete, Modify)) and query.pattern.eq:
                counts.update(i for i, v in query.pattern.eq.items() if _hashable(v))
        if not counts:
            return None
        col, uses = counts.most_common(1)[0]
        return col if uses >= 2 else None

    # -- inspection ---------------------------------------------------------------

    def live_rows(self, relation: str) -> set[tuple[object, ...]]:
        return {row for row, state in self._relation_states(relation).items() if state.live}

    def result(self) -> Database:
        db = Database(self.schema)
        for name, states in self._states.items():
            db.extend(name, (row for row, state in states.items() if state.live))
        return db

    def support_count(self) -> int:
        return sum(len(states) for states in self._states.values())

    def live_count(self) -> int:
        return sum(
            1 for states in self._states.values() for state in states.values() if state.live
        )

    def provenance_size(self) -> int:
        return sum(
            self._expr_of(state.ann).size()
            for states in self._states.values()
            for state in states.values()
        )

    def provenance_dag_size(self) -> int:
        seen: set[int] = set()
        stack: list[Expr] = []
        for states in self._states.values():
            for state in states.values():
                root = self._expr_of(state.ann)
                if id(root) not in seen:
                    stack.append(root)
                # One shared visited set across all rows: shared sub-DAGs are
                # neither re-counted nor re-traversed.
                while stack:
                    node = stack.pop()
                    if id(node) in seen:
                        continue
                    seen.add(id(node))
                    stack.extend(c for c in node.children if id(c) not in seen)
        return len(seen)

    def provenance_items(self, relation: str) -> Iterator[tuple[tuple, Expr, bool]]:
        for row, state in self._relation_states(relation).items():
            yield row, self._expr_of(state.ann), state.live

    def tuple_var(self, relation: str, row: tuple) -> str | None:
        return self._tuple_vars.get(relation, {}).get(tuple(row))

    def tuple_var_names(self) -> frozenset[str]:
        return frozenset(
            name for names in self._tuple_vars.values() for name in names.values()
        )


class NaiveExecutor(AnnotatedExecutor):
    """The literal Section 3.1 construction ("No axioms")."""

    policy = "naive"

    def _initial(self, ann_name: str) -> Expr:
        return var(ann_name)

    def _insert_ann(self, ann: Expr | None, p: Expr) -> Expr:
        return plus_i(ann if ann is not None else ZERO, p)

    def _delete_ann(self, ann: Expr, p: Expr) -> Expr:
        return minus(ann, p)

    def _contribution(self, ann: Expr, p: Expr) -> Expr:
        return ann

    def _merge(self, contributions: list[Expr]) -> Expr:
        return ssum(contributions)

    def _absorb(self, ann: Expr | None, contribution: Expr, p: Expr) -> Expr:
        return plus_m(ann if ann is not None else ZERO, times_m(contribution, p))

    def _expr_of(self, ann: Expr) -> Expr:
        return ann


class NormalFormExecutor(AnnotatedExecutor):
    """Incremental Theorem 5.3 normal forms ("Normal form")."""

    policy = "normal_form"

    def _initial(self, ann_name: str) -> NormalForm:
        return NormalForm.untouched(var(ann_name))

    def _insert_ann(self, ann: NormalForm | None, p: Expr) -> NormalForm:
        return (ann if ann is not None else NormalForm.absent()).on_insert(p)

    def _delete_ann(self, ann: NormalForm, p: Expr) -> NormalForm:
        return ann.on_delete(p)

    def _contribution(self, ann: NormalForm, p: Expr) -> Contribution:
        return ann.contribution(p)

    def _merge(self, contributions: list[Contribution]) -> Contribution:
        acc = Contribution()
        for c in contributions:
            acc = acc.merge(c)
        return acc

    def _absorb(
        self, ann: NormalForm | None, contribution: Contribution, p: Expr
    ) -> NormalForm:
        return (ann if ann is not None else NormalForm.absent()).absorb(contribution, p)

    def _expr_of(self, ann: NormalForm) -> Expr:
        return ann.to_expr()


class BatchNormalFormExecutor(NaiveExecutor):
    """Normal forms with batch-deferred rewriting ("Normal form, batched").

    During a run of updates annotations accumulate through the *naive*
    Section 3.1 construction — O(1) smart-constructor appends per touched
    row, no per-update rule application — and the Theorem 5.3 rewrite runs
    once per :meth:`flush`: at transaction boundaries and before any
    provenance is observed.  The flush uses the memoized replay normalizer
    (:func:`repro.core.normalize.normalize_expr`), so bases shared across
    rows and layers already normalized by earlier flushes are not rewritten
    again — the amortized regime of Berkholz-style update processing.

    The flushed annotation of a row is UP[X]-equivalent to what
    :class:`NormalFormExecutor` maintains incrementally (both implement the
    Figure 6 rules), and of the same linear size bound.
    """

    policy = "normal_form_batch"

    def flush(self) -> None:
        """Rewrite every stored annotation into its normal form, once.

        Rows whose annotation normalizes to ``0`` and that are dead are
        dropped from the support: they are modification targets all of
        whose sources were deleted under the same annotation (Rule 3), the
        rows the incremental executor never creates in the first place.  A
        live row can never normalize to ``0`` (Proposition 4.2: liveness is
        the all-true Boolean valuation of the annotation).
        """
        for states in self._states.values():
            dead_zero: list[tuple] = []
            for row, state in states.items():
                state.ann = normalize_expr(state.ann)
                if state.ann.is_zero and not state.live:
                    dead_zero.append(row)
            for row in dead_zero:
                del states[row]

    def on_transaction_end(self, name: str) -> None:
        self.flush()

    # Observations must never expose un-normalized intermediates, and the
    # support count must not depend on whether provenance was read first
    # (flushing drops dead zero-annotation rows).

    def provenance_items(self, relation: str) -> Iterator[tuple[tuple, Expr, bool]]:
        self.flush()
        return super().provenance_items(relation)

    def provenance_size(self) -> int:
        self.flush()
        return super().provenance_size()

    def provenance_dag_size(self) -> int:
        self.flush()
        return super().provenance_dag_size()

    def support_count(self) -> int:
        self.flush()
        return super().support_count()
