"""Execution statistics collected by the engine.

The paper's evaluation (Section 6) reports runtime, database-size overhead
(tombstones) and provenance size; :class:`EngineStats` accumulates the raw
counters those series are computed from.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["EngineStats"]


@dataclass
class EngineStats:
    """Counters accumulated while applying update queries."""

    queries: int = 0
    inserts: int = 0
    deletes: int = 0
    modifies: int = 0
    transactions: int = 0
    rows_matched: int = 0
    rows_created: int = 0
    wall_time: float = 0.0
    per_query_time: list[float] = field(default_factory=list, repr=False)

    def record(self, kind: str, matched: int, created: int, elapsed: float) -> None:
        self.queries += 1
        if kind == "insert":
            self.inserts += 1
        elif kind == "delete":
            self.deletes += 1
        else:
            self.modifies += 1
        self.rows_matched += matched
        self.rows_created += created
        self.wall_time += elapsed
        self.per_query_time.append(elapsed)

    def snapshot(self) -> dict[str, float | int]:
        """A plain-dict summary (stable keys for reports and benches)."""
        return {
            "queries": self.queries,
            "inserts": self.inserts,
            "deletes": self.deletes,
            "modifies": self.modifies,
            "transactions": self.transactions,
            "rows_matched": self.rows_matched,
            "rows_created": self.rows_created,
            "wall_time": self.wall_time,
        }
