"""Execution statistics collected by the engine.

The paper's evaluation (Section 6) reports runtime, database-size overhead
(tombstones) and provenance size; :class:`EngineStats` accumulates the raw
counters those series are computed from.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["EngineStats"]


@dataclass
class EngineStats:
    """Counters accumulated while applying update queries."""

    queries: int = 0
    inserts: int = 0
    deletes: int = 0
    modifies: int = 0
    transactions: int = 0
    rows_matched: int = 0
    rows_created: int = 0
    wall_time: float = 0.0
    #: Fused runs executed through Engine.apply_batch.
    batches: int = 0
    #: Queries that went through a fused run (subset of ``queries``).
    batched_queries: int = 0
    #: Wall time spent inside fused runs (subset of ``wall_time``).
    batch_time: float = 0.0
    #: Pattern matchings the store served from its column indexes.
    index_hits: int = 0
    #: Pattern matchings that fell back to a linear scan of the support.
    fallback_scans: int = 0
    #: Candidate rows the indexes handed to the predicate (indexed path only).
    index_rows_examined: int = 0
    #: Wall time spent writing durability checkpoints (outside ``wall_time``,
    #: which stays the per-query executor time the Section 6 series report).
    checkpoint_time: float = 0.0
    per_query_time: list[float] = field(default_factory=list, repr=False)
    #: Planner-counter baseline restored from a checkpoint, as
    #: ``(index_hits, fallback_scans, rows_examined)``.  A recovered
    #: engine's store is rebuilt from the snapshot and its planner
    #: counters restart at zero, so :meth:`sync_planner` adds this offset
    #: instead of letting the rebuilt store's much smaller totals
    #: overwrite the restored lifetime counters.
    planner_base: tuple[int, int, int] = field(default=(0, 0, 0), repr=False)

    def record(self, kind: str, matched: int, created: int, elapsed: float) -> None:
        self.queries += 1
        self._count_kind(kind)
        self.rows_matched += matched
        self.rows_created += created
        self.wall_time += elapsed
        self.per_query_time.append(elapsed)

    def record_batch(
        self, kinds: list[str], matched: int, created: int, elapsed: float
    ) -> None:
        """Account one fused run of ``len(kinds)`` queries.

        Row counts are only known per run, not per query; ``per_query_time``
        receives the run's mean so its length stays equal to ``queries``.
        """
        if not kinds:
            return
        self.batches += 1
        self.batched_queries += len(kinds)
        self.batch_time += elapsed
        self.queries += len(kinds)
        for kind in kinds:
            self._count_kind(kind)
        self.rows_matched += matched
        self.rows_created += created
        self.wall_time += elapsed
        self.per_query_time.extend([elapsed / len(kinds)] * len(kinds))

    def sync_planner(self, planner_stats) -> None:
        """Mirror a store's cumulative planner decisions into these counters.

        Planner counters are monotone totals owned by the executor's store
        — the store is the single writer, so they are mirrored, not summed
        per call.  ``planner_base`` (non-zero only on engines restored
        from a checkpoint, whose store counters restarted at zero) is
        added on top so lifetime totals survive recovery.
        """
        base_hits, base_scans, base_rows = self.planner_base
        self.index_hits = base_hits + planner_stats.index_hits
        self.fallback_scans = base_scans + planner_stats.fallback_scans
        self.index_rows_examined = base_rows + planner_stats.rows_examined

    def _count_kind(self, kind: str) -> None:
        if kind == "insert":
            self.inserts += 1
        elif kind == "delete":
            self.deletes += 1
        else:
            self.modifies += 1

    @classmethod
    def restore(cls, counters: "dict | None") -> "EngineStats":
        """Rebuild stats from a :meth:`snapshot` dict (resumable engines).

        Used by the WAL recovery path so a recovered engine's counters
        continue from where the crashed process left off.  Unknown keys
        are ignored (old checkpoints stay loadable); ``per_query_time``
        is not part of a snapshot, so the restored list restarts empty —
        documented in ``docs/ARCHITECTURE.md``.

        The restored planner totals become ``planner_base``: the engine
        resuming from the checkpoint sits on a freshly rebuilt store whose
        own counters start at zero, and :meth:`sync_planner` adds them to
        this baseline.
        """
        stats = cls()
        for key, value in (counters or {}).items():
            if key in _SNAPSHOT_KEYS:
                setattr(stats, key, value)
        stats.planner_base = (
            stats.index_hits,
            stats.fallback_scans,
            stats.index_rows_examined,
        )
        return stats

    def snapshot(self) -> dict[str, float | int]:
        """A plain-dict summary (stable keys for reports and benches)."""
        return {
            "queries": self.queries,
            "inserts": self.inserts,
            "deletes": self.deletes,
            "modifies": self.modifies,
            "transactions": self.transactions,
            "rows_matched": self.rows_matched,
            "rows_created": self.rows_created,
            "wall_time": self.wall_time,
            "batches": self.batches,
            "batched_queries": self.batched_queries,
            "batch_time": self.batch_time,
            "index_hits": self.index_hits,
            "fallback_scans": self.fallback_scans,
            "index_rows_examined": self.index_rows_examined,
            "checkpoint_time": self.checkpoint_time,
        }


#: Scalar counters a snapshot round-trips (everything but per_query_time).
_SNAPSHOT_KEYS = frozenset(EngineStats().snapshot())
