"""The provenance-tracking update engine.

:class:`Engine` wraps a policy executor and applies update queries,
transactions or whole logs while collecting the statistics the paper's
evaluation reports.  Policies::

    none / no_provenance   vanilla set semantics (baseline)
    naive / no_axioms      Section 3.1 construction, no equivalence axioms
    normal_form            incremental Theorem 5.3 normal forms
    mv_tree / mv_string    the MV-semiring baseline of [Arab et al. 2016]

Example::

    engine = Engine(db, policy="normal_form")
    engine.apply(Transaction("t1", [Delete.where(rel, {"category": "Fashion"})]))
    for row, expr, live in engine.provenance("products"):
        ...
"""

from __future__ import annotations

import time
from typing import Callable, Iterable, Iterator, Mapping

from ..core.expr import Expr, evaluate
from ..db.database import Database
from ..errors import EngineError
from ..queries.updates import Transaction, UpdateQuery
from .executors import (
    BatchNormalFormExecutor,
    Executor,
    NaiveExecutor,
    NormalFormExecutor,
    VanillaExecutor,
)
from .stats import EngineStats

__all__ = ["Engine", "POLICIES", "make_executor"]


def _mv_factory(kind: str):
    def factory(database: Database, annotate=None, arena: bool = False) -> Executor:
        from ..mv.policy import MVExecutor  # lazy: keep engine importable alone

        return MVExecutor(database, representation=kind, annotate=annotate)

    return factory


POLICIES: dict[str, Callable[..., Executor]] = {
    "none": VanillaExecutor,
    "no_provenance": VanillaExecutor,
    "naive": NaiveExecutor,
    "no_axioms": NaiveExecutor,
    "normal_form": NormalFormExecutor,
    "normal_form_batch": BatchNormalFormExecutor,
    "mv_tree": _mv_factory("tree"),
    "mv_string": _mv_factory("string"),
}


#: Policies whose annotation slots hold plain expressions — the ones the
#: integer-id arena can keep at rest.  ``normal_form`` stores NormalForm
#: objects and the MV policies store version annotations; both keep the
#: object representation.
ARENA_POLICIES = ("naive", "no_axioms", "normal_form_batch", "none", "no_provenance")


def make_executor(
    database: Database,
    policy: str,
    annotate: Callable[[str, tuple, int], str] | None = None,
    arena: bool = False,
) -> Executor:
    """Instantiate the executor registered under ``policy``."""
    try:
        factory = POLICIES[policy]
    except KeyError:
        raise EngineError(
            f"unknown policy {policy!r} (known: {', '.join(sorted(POLICIES))})"
        ) from None
    if arena and policy not in ARENA_POLICIES:
        raise EngineError(
            f"policy {policy!r} does not support arena-encoded annotations "
            f"(supported: {', '.join(ARENA_POLICIES)})"
        )
    if factory is VanillaExecutor:
        return VanillaExecutor(database, arena=arena)
    return factory(database, annotate=annotate, arena=arena)


class Engine:
    """Applies hyperplane updates under a provenance policy."""

    def __init__(
        self,
        database: Database,
        policy: str = "normal_form",
        annotate: Callable[[str, tuple, int], str] | None = None,
        clock: Callable[[], float] = time.perf_counter,
        journal=None,
        arena: bool = False,
        deltas=None,
    ):
        self.policy = policy
        self.executor = make_executor(database, policy, annotate, arena=arena)
        self.stats = EngineStats()
        self._clock = clock
        self._applied: list[UpdateQuery] = []
        #: Write-ahead journal hook (see ``repro.wal``).  Anything with
        #: ``append_query`` / ``append_txn_end`` / ``append_batch_end``
        #: works; every update is journaled *before* it is applied, so a
        #: crash mid-apply re-applies the record on recovery (redo-log
        #: discipline) instead of losing it.
        self.journal = journal
        #: Row-delta hook alongside the journal hook (see ``repro.views``):
        #: a :class:`~repro.views.deltas.DeltaBuffer` the executor mirrors
        #: every support mutation into.  Usually attached after
        #: construction via :func:`repro.views.deltas.attach_delta_sink`,
        #: which also validates the policy can emit deltas.
        self.deltas = deltas
        if deltas is not None:
            self.executor.delta_sink = deltas

    # -- applying updates -------------------------------------------------------

    def apply(self, item: UpdateQuery | Transaction | Iterable) -> "Engine":
        """Apply a query, a transaction, or any iterable of those.

        Returns ``self`` so applications chain.
        """
        if isinstance(item, UpdateQuery):
            self._apply_query(item)
        elif isinstance(item, Transaction):
            for query in item:
                self._apply_query(query)
            if self.journal is not None:
                self.journal.append_txn_end(item.name)
            self.executor.on_transaction_end(item.name)
            self.stats.transactions += 1
        elif isinstance(item, Iterable) and not isinstance(item, (str, bytes)):
            # str/bytes are iterables of themselves one character down and
            # would recurse forever; they are never applicable anyway.
            for element in item:
                self.apply(element)
        else:
            raise EngineError(f"cannot apply {type(item).__name__}")
        return self

    def _apply_query(self, query: UpdateQuery) -> None:
        # The journal append sits inside the timed section (as in the
        # batched path), so a journaled run's wall_time reflects the
        # per-record sync cost it actually pays.
        start = self._clock()
        if self.journal is not None:
            self.journal.append_query(query)
        try:
            matched, created = self.executor.apply(query)
        except Exception:
            if self.journal is not None:
                # The write-ahead record must not replay on recovery:
                # executors validate before mutating, so a raising apply
                # left no state change to redo.
                self.journal.append_abort()
            raise
        elapsed = self._clock() - start
        self.stats.record(query.kind, matched, created, elapsed)
        self._sync_planner_stats()
        self._applied.append(query)

    def _sync_planner_stats(self) -> None:
        store = getattr(self.executor, "store", None)
        if store is not None:
            self.stats.sync_planner(store.stats)

    def apply_batch(self, item: UpdateQuery | Transaction | Iterable) -> "Engine":
        """Apply a query sequence through the batched pipeline.

        Semantically identical to :meth:`apply` — same final states, same
        provenance — but maximal runs of consecutive queries on one
        relation are handed to the executor as single fused units
        (:meth:`~repro.engine.executors.Executor.apply_batch`): one shared
        selection index instead of a scan per query, and for the
        ``normal_form_batch`` policy one normalization per flush instead of
        rule application per update.  Runs never straddle a transaction
        boundary, so per-transaction hooks fire exactly as under
        :meth:`apply`.  Per-run timings land in ``stats`` as batch
        counters.
        """
        run: list[UpdateQuery] = []

        def flush_run() -> None:
            if not run:
                return
            start = self._clock()
            if self.journal is None:
                matched, created = self.executor.apply_batch(run)
            else:
                # Journaled runs take the per-query write-ahead protocol
                # (append, apply, abort-compensate on a raising apply), so
                # the journal always reflects exactly the applied prefix
                # of a run.  Executor.apply_batch is bit-identical to this
                # loop by construction (no executor overrides it), so run
                # semantics are unchanged; only the fused call is given up.
                matched = created = 0
                for query in run:
                    self.journal.append_query(query)
                    try:
                        m, c = self.executor.apply(query)
                    except Exception:
                        self.journal.append_abort()
                        raise
                    matched += m
                    created += c
                self.journal.append_batch_end(len(run))
            elapsed = self._clock() - start
            self.stats.record_batch([q.kind for q in run], matched, created, elapsed)
            self._sync_planner_stats()
            self._applied.extend(run)
            run.clear()

        def feed(item: UpdateQuery | Transaction | Iterable) -> None:
            if isinstance(item, UpdateQuery):
                if run and run[-1].relation != item.relation:
                    flush_run()
                run.append(item)
            elif isinstance(item, Transaction):
                flush_run()  # runs never straddle a transaction boundary
                for query in item:
                    feed(query)
                flush_run()
                if self.journal is not None:
                    self.journal.append_txn_end(item.name)
                self.executor.on_transaction_end(item.name)
                self.stats.transactions += 1
            elif isinstance(item, Iterable) and not isinstance(item, (str, bytes)):
                for element in item:
                    feed(element)
            else:
                raise EngineError(f"cannot apply {type(item).__name__}")

        feed(item)
        flush_run()
        return self

    @property
    def applied_queries(self) -> tuple[UpdateQuery, ...]:
        return tuple(self._applied)

    # -- results ------------------------------------------------------------------

    def result(self) -> Database:
        """The live contents under standard set semantics."""
        return self.executor.result()

    def live_rows(self, relation: str) -> set[tuple[object, ...]]:
        return self.executor.live_rows(relation)

    def provenance(self, relation: str) -> Iterator[tuple[tuple, Expr, bool]]:
        """``(row, provenance expression, live)`` for every stored row."""
        return self.executor.provenance_items(relation)

    def annotation_of(self, relation: str, row: Iterable[object]) -> Expr:
        """The provenance expression of one row (0 if never stored).

        Store-backed executors resolve this through the row-keyed index in
        O(1); other executors fall back to a provenance scan.
        """
        return self.executor.annotation_of(relation, tuple(row))

    def tuple_var(self, relation: str, row: Iterable[object]) -> str | None:
        """Base annotation name of an initial tuple (for what-if valuations)."""
        return self.executor.tuple_var(relation, tuple(row))

    def tuple_var_names(self) -> frozenset[str]:
        """All annotation names assigned to initial tuples."""
        return self.executor.tuple_var_names()

    # -- measurements ---------------------------------------------------------------

    def support_count(self) -> int:
        return self.executor.support_count()

    def live_count(self) -> int:
        return self.executor.live_count()

    def provenance_size(self) -> int:
        return self.executor.provenance_size()

    def provenance_dag_size(self) -> int:
        return self.executor.provenance_dag_size()

    def overhead_report(self, baseline: "Engine | None" = None) -> dict[str, object]:
        """The Section 6 measurements for this engine (vs. an optional baseline).

        ``row_overhead`` is the tombstone overhead relative to the
        baseline's live rows; when the baseline holds no live rows at all
        the ratio is undefined and reported as ``None`` rather than a
        value fabricated from a clamped denominator.
        """
        report: dict[str, object] = {
            "policy": self.policy,
            "support_rows": self.support_count(),
            "live_rows": self.live_count(),
            "provenance_size": self.provenance_size(),
            "wall_time": self.stats.wall_time,
            "queries": self.stats.queries,
            "index_hits": self.stats.index_hits,
            "fallback_scans": self.stats.fallback_scans,
        }
        if baseline is not None:
            base_rows = baseline.live_count()
            report["row_overhead"] = (
                (self.support_count() - base_rows) / base_rows if base_rows else None
            )
            if baseline.stats.wall_time:
                report["time_overhead"] = (
                    self.stats.wall_time - baseline.stats.wall_time
                ) / baseline.stats.wall_time
        return report

    # -- specialization (Section 4) ----------------------------------------------------

    def specialize(
        self,
        structure,
        env: Mapping[str, object] | Callable[[str], object],
    ) -> dict[str, dict[tuple, object]]:
        """Evaluate every stored annotation in a concrete Update-Structure.

        This is the "provenance usage" operation the paper times in Figures
        7c/8c: assigning values to annotations.  Returns, per relation, a
        mapping from rows to structure values (e.g. booleans for deletion
        propagation).
        """
        if not self.executor.tracks_provenance:
            raise EngineError(f"policy {self.policy!r} does not track provenance")
        if not getattr(self.executor, "supports_specialization", True):
            raise EngineError(
                f"policy {self.policy!r} stores version annotations, not UP[X] "
                "expressions; Update-Structure specialization does not apply"
            )
        out: dict[str, dict[tuple, object]] = {}
        for name in self.executor.schema.names:
            values: dict[tuple, object] = {}
            for row, expr, _live in self.executor.provenance_items(name):
                values[row] = evaluate(expr, structure, env)
            out[name] = values
        return out

    def specialized_database(
        self,
        structure,
        env: Mapping[str, object] | Callable[[str], object],
    ) -> Database:
        """The database whose rows are those with non-zero specialized value."""
        values = self.specialize(structure, env)
        db = Database(self.executor.schema)
        zero = structure.zero
        for name, rows in values.items():
            db.extend(name, (row for row, value in rows.items() if value != zero))
        return db
