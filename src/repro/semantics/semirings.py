"""Commutative semirings and the Theorem 4.5 admissibility conditions.

Theorem 4.5: a commutative semiring ``(K, +, ., 0, 1)`` satisfying

* absorption   ``a + 1 = 1``  and
* multiplicative idempotence  ``a . a = a``

extends to an UP[X] Update-Structure by taking ``+I = +M = + = +K`` and
``*M = .K`` together with any compatible minus (see
:mod:`repro.semantics.from_semiring`).  This module provides the semiring
abstraction, admissible instances (Boolean, power-set, fuzzy/Gödel), and —
deliberately — *inadmissible* ones (counting ``N``, Why(X)) used as
negative tests: the conditions really are necessary.
"""

from __future__ import annotations

import itertools
import random
from typing import Iterable, Sequence

__all__ = [
    "Semiring",
    "BooleanSemiring",
    "PowerSetSemiring",
    "FuzzySemiring",
    "NaturalsSemiring",
    "WhySemiring",
    "semiring_violations",
    "satisfies_theorem_4_5",
]


class Semiring:
    """A commutative semiring ``(K, plus, times, zero, one)``."""

    zero: object
    one: object
    name = "abstract"

    def plus(self, a, b):
        raise NotImplementedError

    def times(self, a, b):
        raise NotImplementedError

    def equal(self, a, b) -> bool:
        return a == b

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class BooleanSemiring(Semiring):
    """``({False, True}, or, and, False, True)`` — PosBool's quotient."""

    zero = False
    one = True
    name = "bool"

    def plus(self, a: bool, b: bool) -> bool:
        return a or b

    def times(self, a: bool, b: bool) -> bool:
        return a and b


class PowerSetSemiring(Semiring):
    """``(P(C), union, intersection, {}, C)`` — Example 4.6's access control."""

    name = "powerset"

    def __init__(self, universe: Iterable[object]):
        self.universe = frozenset(universe)
        self.zero = frozenset()
        self.one = self.universe

    def plus(self, a: frozenset, b: frozenset) -> frozenset:
        return a | b

    def times(self, a: frozenset, b: frozenset) -> frozenset:
        return a & b

    def elements(self) -> list[frozenset]:
        """The full carrier (for exhaustive axiom checks; small universes)."""
        items = sorted(self.universe, key=repr)
        out = []
        for r in range(len(items) + 1):
            out.extend(frozenset(c) for c in itertools.combinations(items, r))
        return out


class FuzzySemiring(Semiring):
    """``([0, 1], max, min, 0, 1)`` — Gödel / Viterbi-style confidences."""

    zero = 0.0
    one = 1.0
    name = "fuzzy"

    def plus(self, a: float, b: float) -> float:
        return max(a, b)

    def times(self, a: float, b: float) -> float:
        return min(a, b)


class NaturalsSemiring(Semiring):
    """``(N, +, x, 0, 1)`` — counting.  *Not* Theorem 4.5 admissible."""

    zero = 0
    one = 1
    name = "naturals"

    def plus(self, a: int, b: int) -> int:
        return a + b

    def times(self, a: int, b: int) -> int:
        return a * b


class WhySemiring(Semiring):
    """Why(X): sets of witness sets.  *Not* Theorem 4.5 admissible.

    ``plus`` is union, ``times`` is pairwise union of witness sets; ``one``
    is ``{{}}``.  Fails absorption (``a + 1 != 1``) — kept as a negative
    example showing why not every provenance semiring supports updates.
    """

    zero = frozenset()
    one = frozenset({frozenset()})
    name = "why"

    def plus(self, a: frozenset, b: frozenset) -> frozenset:
        return a | b

    def times(self, a: frozenset, b: frozenset) -> frozenset:
        return frozenset(x | y for x in a for y in b)


def semiring_violations(
    semiring: Semiring,
    elements: Sequence[object],
    max_cases: int = 50_000,
    rng: random.Random | None = None,
) -> list[str]:
    """Violated semiring laws / Theorem 4.5 conditions on sampled elements."""
    rng = rng or random.Random(0)
    eq = semiring.equal
    plus, times = semiring.plus, semiring.times
    zero, one = semiring.zero, semiring.one
    problems: list[str] = []

    def triples():
        total = len(elements) ** 3
        if total <= max_cases:
            yield from itertools.product(elements, repeat=3)
        else:
            for _ in range(max_cases):
                yield tuple(rng.choice(elements) for _ in range(3))

    laws = [
        ("plus commutative", lambda a, b, c: eq(plus(a, b), plus(b, a))),
        ("plus associative", lambda a, b, c: eq(plus(plus(a, b), c), plus(a, plus(b, c)))),
        ("times commutative", lambda a, b, c: eq(times(a, b), times(b, a))),
        ("times associative", lambda a, b, c: eq(times(times(a, b), c), times(a, times(b, c)))),
        ("distributivity", lambda a, b, c: eq(times(a, plus(b, c)), plus(times(a, b), times(a, c)))),
        ("zero neutral", lambda a, b, c: eq(plus(a, zero), a)),
        ("one neutral", lambda a, b, c: eq(times(a, one), a)),
        ("zero annihilates", lambda a, b, c: eq(times(a, zero), zero)),
        ("absorption a+1=1", lambda a, b, c: eq(plus(a, one), one)),
        ("idempotence a.a=a", lambda a, b, c: eq(times(a, a), a)),
    ]
    failed: set[str] = set()
    for a, b, c in triples():
        for label, law in laws:
            if label not in failed and not law(a, b, c):
                failed.add(label)
                problems.append(f"{label} fails at a={a!r}, b={b!r}, c={c!r}")
    return problems


def satisfies_theorem_4_5(
    semiring: Semiring,
    elements: Sequence[object],
    max_cases: int = 50_000,
) -> bool:
    """True if all semiring laws plus the two Theorem 4.5 conditions hold."""
    return not semiring_violations(semiring, elements, max_cases=max_cases)
