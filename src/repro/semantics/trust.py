"""The tuple/transaction certification Update-Structure (Section 4.1).

Annotations are pairs ``(v, r)`` where ``v`` is a trust score in ``[0, 1]``
and ``r`` is a trust status: ``T`` (trusted), ``F`` (untrusted) or ``U``
(unknown — trusted iff ``v`` exceeds the threshold ``L``).  The paper's
``trusted(x)`` macro is ``x.r == T or (x.r == U and x.v > L)``; the
operations evaluate to the canonical values ``(1, T)`` / ``(0, F)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import StructureError
from .structure import UpdateStructure

__all__ = ["TrustValue", "TrustStructure", "TRUSTED", "UNTRUSTED"]


@dataclass(frozen=True)
class TrustValue:
    """A trust annotation ``(v, r)``."""

    v: float
    r: str  # "T", "F" or "U"

    def __post_init__(self):
        if self.r not in ("T", "F", "U"):
            raise StructureError(f"trust status must be T/F/U, got {self.r!r}")
        if not 0.0 <= self.v <= 1.0:
            raise StructureError(f"trust score must be in [0, 1], got {self.v!r}")

    @classmethod
    def unknown(cls, score: float) -> "TrustValue":
        """An input annotation: trustworthiness score, status to be decided."""
        return cls(score, "U")


TRUSTED = TrustValue(1.0, "T")
UNTRUSTED = TrustValue(0.0, "F")


class TrustStructure(UpdateStructure):
    """Certification with respect to a minimal trust level ``L``."""

    zero = UNTRUSTED
    name = "trust"

    def __init__(self, threshold: float = 0.5):
        if not 0.0 <= threshold <= 1.0:
            raise StructureError(f"threshold must be in [0, 1], got {threshold!r}")
        self.threshold = threshold

    def trusted(self, x: TrustValue) -> bool:
        """The paper's ``trusted(x)`` macro."""
        return x.r == "T" or (x.r == "U" and x.v > self.threshold)

    def _of(self, flag: bool) -> TrustValue:
        return TRUSTED if flag else UNTRUSTED

    def plus_i(self, a: TrustValue, b: TrustValue) -> TrustValue:
        return self._of(self.trusted(a) or self.trusted(b))

    def plus_m(self, a: TrustValue, b: TrustValue) -> TrustValue:
        return self._of(self.trusted(a) or self.trusted(b))

    def plus(self, a: TrustValue, b: TrustValue) -> TrustValue:
        return self._of(self.trusted(a) or self.trusted(b))

    def times_m(self, a: TrustValue, b: TrustValue) -> TrustValue:
        return self._of(self.trusted(a) and self.trusted(b))

    def minus(self, a: TrustValue, b: TrustValue) -> TrustValue:
        return self._of(self.trusted(a) and not self.trusted(b))

    def equal(self, a: TrustValue, b: TrustValue) -> bool:
        """Trusted-equivalence: the structure is a quotient by ``trusted``.

        Input annotations like ``(0.9, U)`` are not canonical; the axioms
        (and the zero axioms) hold modulo whether a value is trusted, which
        is the only observable the certification application uses.
        """
        return self.trusted(a) == self.trusted(b)
