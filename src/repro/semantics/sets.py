"""The access-control Update-Structure (Section 4.1).

Annotations are sets (e.g. of country names): a user from country ``c``
sees a tuple iff ``c`` is in the tuple's specialized annotation.  The
operations are ``+M = +I = + = union``, ``*M = intersection``,
``- = set difference``, ``0 = the empty set`` — the structure obtained by
Theorem 4.5 from the semiring ``(P(C), union, intersection, {}, C)``
(Example 4.6).
"""

from __future__ import annotations

from typing import Iterable

from .structure import UpdateStructure

__all__ = ["SetStructure"]


class SetStructure(UpdateStructure):
    """Sets with union/intersection/difference (access control)."""

    zero: frozenset = frozenset()
    name = "sets"

    def __init__(self, universe: Iterable[object] = ()):
        #: the full credential set ``C`` (the semiring's 1); only needed by
        #: helpers, the operations themselves are universe-independent.
        self.universe = frozenset(universe)

    def value(self, items: Iterable[object]) -> frozenset:
        """Normalize an annotation value to a frozenset."""
        return frozenset(items)

    def top(self) -> frozenset:
        """The annotation visible to everybody (the whole universe)."""
        return self.universe

    def plus_i(self, a: frozenset, b: frozenset) -> frozenset:
        return a | b

    def plus_m(self, a: frozenset, b: frozenset) -> frozenset:
        return a | b

    def plus(self, a: frozenset, b: frozenset) -> frozenset:
        return a | b

    def times_m(self, a: frozenset, b: frozenset) -> frozenset:
        return a & b

    def minus(self, a: frozenset, b: frozenset) -> frozenset:
        return a - b
