"""PosBool[X]: the symbolic Boolean Update-Structure, carried by BDDs.

Example 4.6 names PosBool (Boolean expressions over variables) with
``a - b = a and not b`` as an axiom-satisfying structure.  Representing the
carrier by reduced ordered BDD nodes makes equality canonical: two
specializations are the same Boolean function iff they are the same node.

This structure powers *symbolic* provenance usage: map every annotation to
its own BDD variable (or fix some to constants) and evaluate; the result
per tuple is a Boolean function of the still-symbolic annotations, on which
deletion-propagation/abortion questions become BDD queries (restrict,
sat-count, model enumeration) instead of re-runs.
"""

from __future__ import annotations

from ..bdd import Bdd
from .structure import UpdateStructure

__all__ = ["PosBoolStructure"]


class PosBoolStructure(UpdateStructure):
    """Boolean functions represented as nodes of a shared BDD manager."""

    name = "posbool"

    def __init__(self, bdd: Bdd | None = None):
        self.bdd = bdd or Bdd()
        self.zero = self.bdd.FALSE
        self.one = self.bdd.TRUE

    def var(self, name: str) -> int:
        """The symbolic value of annotation ``name``."""
        return self.bdd.var(name)

    def env(self, fixed: dict[str, bool] | None = None):
        """A valuation mapping annotations to BDD variables.

        Annotations in ``fixed`` become constants; everything else stays
        symbolic.
        """
        fixed = fixed or {}

        def lookup(name: str) -> int:
            if name in fixed:
                return self.bdd.TRUE if fixed[name] else self.bdd.FALSE
            return self.bdd.var(name)

        return lookup

    def plus_i(self, a: int, b: int) -> int:
        return self.bdd.apply_or(a, b)

    def plus_m(self, a: int, b: int) -> int:
        return self.bdd.apply_or(a, b)

    def plus(self, a: int, b: int) -> int:
        return self.bdd.apply_or(a, b)

    def times_m(self, a: int, b: int) -> int:
        return self.bdd.apply_and(a, b)

    def minus(self, a: int, b: int) -> int:
        return self.bdd.apply_diff(a, b)
