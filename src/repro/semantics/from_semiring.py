"""Building Update-Structures from commutative semirings (Theorem 4.5).

Given an admissible semiring (``a + 1 = 1``, ``a . a = a``) and a minus
operation compatible with the Figure 3 axioms, :func:`structure_from_semiring`
produces an :class:`~repro.semantics.structure.UpdateStructure` with
``+I = +M = + = +K`` and ``*M = .K``.

For semirings whose carrier is a Boolean algebra — the shipped admissible
instances — the natural minus is ``a - b = a . complement(b)``;
:func:`boolean_algebra_minus` builds it from a complement function.  The
paper points out (after Theorem 4.5) that the *monus* of Geerts & Poggi
does **not** work in general: ``tests/semantics/test_from_semiring.py``
exhibits the failing axiom 10 instance for the fuzzy semiring's truncated
monus.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..errors import StructureError
from .semirings import Semiring, semiring_violations
from .structure import UpdateStructure

__all__ = ["SemiringUpdateStructure", "structure_from_semiring", "boolean_algebra_minus"]


class SemiringUpdateStructure(UpdateStructure):
    """The Theorem 4.5 structure for an admissible semiring and minus."""

    def __init__(self, semiring: Semiring, minus: Callable[[object, object], object]):
        self.semiring = semiring
        self._minus = minus
        self.zero = semiring.zero
        self.name = f"from_semiring({semiring.name})"

    def plus_i(self, a, b):
        return self.semiring.plus(a, b)

    def plus_m(self, a, b):
        return self.semiring.plus(a, b)

    def plus(self, a, b):
        return self.semiring.plus(a, b)

    def times_m(self, a, b):
        return self.semiring.times(a, b)

    def minus(self, a, b):
        return self._minus(a, b)

    def equal(self, a, b) -> bool:
        return self.semiring.equal(a, b)


def boolean_algebra_minus(
    semiring: Semiring, complement: Callable[[object], object]
) -> Callable[[object, object], object]:
    """The minus ``a - b = a . complement(b)`` of a Boolean-algebra carrier."""
    return lambda a, b: semiring.times(a, complement(b))


def structure_from_semiring(
    semiring: Semiring,
    minus: Callable[[object, object], object],
    elements: Sequence[object] | None = None,
    validate: bool = True,
) -> SemiringUpdateStructure:
    """Theorem 4.5 constructor with optional validation.

    With ``validate=True`` and sample ``elements``, both the admissibility
    conditions of the semiring and the full Figure 3 axiom set of the
    resulting structure are checked; a violation raises
    :class:`~repro.errors.StructureError` naming the failing law.
    """
    structure = SemiringUpdateStructure(semiring, minus)
    if validate and elements:
        problems = semiring_violations(semiring, elements)
        if problems:
            raise StructureError(
                f"semiring {semiring.name!r} is not Theorem 4.5 admissible: {problems[0]}"
            )
        structure.check_zero_axioms(list(elements))
        structure.check_axioms(list(elements))
    return structure
