"""Concrete Update-Structures, semirings and homomorphisms (Section 4)."""

from .boolean import BooleanStructure
from .from_semiring import (
    SemiringUpdateStructure,
    boolean_algebra_minus,
    structure_from_semiring,
)
from .posbool import PosBoolStructure
from .semirings import (
    BooleanSemiring,
    FuzzySemiring,
    NaturalsSemiring,
    PowerSetSemiring,
    Semiring,
    WhySemiring,
    satisfies_theorem_4_5,
    semiring_violations,
)
from .sets import SetStructure
from .structure import Homomorphism, UpdateStructure, Valuation
from .trust import TRUSTED, UNTRUSTED, TrustStructure, TrustValue

__all__ = [
    "BooleanSemiring",
    "BooleanStructure",
    "FuzzySemiring",
    "Homomorphism",
    "NaturalsSemiring",
    "PosBoolStructure",
    "PowerSetSemiring",
    "Semiring",
    "SemiringUpdateStructure",
    "SetStructure",
    "TRUSTED",
    "TrustStructure",
    "TrustValue",
    "UNTRUSTED",
    "UpdateStructure",
    "Valuation",
    "WhySemiring",
    "boolean_algebra_minus",
    "satisfies_theorem_4_5",
    "semiring_violations",
    "structure_from_semiring",
]
