"""The Boolean Update-Structure (deletion propagation / abortion, §4.1).

``+M = +I = + = or``, ``*M = and``, ``a - b = a and not b``, ``0 = False``.
Assigning ``False`` to a tuple annotation deletes the tuple from the input;
assigning ``False`` to a transaction annotation aborts the transaction —
evaluating the provenance then tells whether each tuple survives, without
re-running anything.
"""

from __future__ import annotations

from .structure import UpdateStructure

__all__ = ["BooleanStructure"]


class BooleanStructure(UpdateStructure):
    """Booleans with or/and/and-not (the paper's deletion-propagation semantics)."""

    zero = False
    name = "boolean"

    def plus_i(self, a: bool, b: bool) -> bool:
        return a or b

    def plus_m(self, a: bool, b: bool) -> bool:
        return a or b

    def plus(self, a: bool, b: bool) -> bool:
        return a or b

    def times_m(self, a: bool, b: bool) -> bool:
        return a and b

    def minus(self, a: bool, b: bool) -> bool:
        return a and not b
