"""Update-Structures: concrete semantics for UP[X] operators (Section 4).

An Update-Structure is a tuple ``(K, +M, *M, -, +I, +, 0)`` giving concrete
meaning to the abstract provenance operations.  Specialization of an
abstract provenance expression into a structure is performed by
:func:`repro.core.expr.evaluate`; Proposition 4.2 (provenance propagation
commutes with homomorphisms) is what makes evaluating the *abstract*
expression equivalent to having tracked provenance directly in the
concrete structure — tested in ``tests/semantics/test_homomorphism.py``.
"""

from __future__ import annotations

import random
from typing import Callable, Iterable, Mapping, Sequence

from ..core.axioms import axiom_violations
from ..errors import StructureError

__all__ = ["UpdateStructure", "Homomorphism", "Valuation"]


class UpdateStructure:
    """Base class for concrete Update-Structures.

    Subclasses define :attr:`zero` and the five operations.  ``plus`` is
    the disjunction used for modification-source sums (the paper stresses
    it is distinct from ``+M``/``+I``, even though most concrete instances
    interpret them identically).
    """

    #: the interpretation of the special element ``0``.
    zero: object = None
    #: human-readable name used in reports.
    name = "abstract"

    def plus_i(self, a, b):
        raise NotImplementedError

    def plus_m(self, a, b):
        raise NotImplementedError

    def times_m(self, a, b):
        raise NotImplementedError

    def minus(self, a, b):
        raise NotImplementedError

    def plus(self, a, b):
        raise NotImplementedError

    def equal(self, a, b) -> bool:
        """Equality of structure values (override for non-canonical carriers)."""
        return a == b

    # -- axiom checking ----------------------------------------------------------

    def check_axioms(
        self,
        elements: Sequence[object],
        max_cases: int = 20_000,
        rng: random.Random | None = None,
    ) -> None:
        """Raise :class:`StructureError` if a Figure 3 axiom fails on a sample.

        Exhaustive when ``len(elements) ** arity`` stays under ``max_cases``
        — for finite carriers listed in full this is a decision procedure.
        """
        violations = axiom_violations(self, elements, max_cases=max_cases, rng=rng)
        if violations:
            name, values = violations[0]
            raise StructureError(
                f"structure {self.name!r} violates {name} at {values!r}"
                + (f" (and {len(violations) - 1} more)" if len(violations) > 1 else "")
            )

    def check_zero_axioms(self, elements: Sequence[object]) -> None:
        """Verify the Section 3.1 zero-related axioms on sample elements."""
        zero = self.zero
        for a in elements:
            checks = [
                ("0 - a = 0", self.minus(zero, a), zero),
                ("0 +M a = a", self.plus_m(zero, a), a),
                ("0 +I a = a", self.plus_i(zero, a), a),
                ("a - 0 = a", self.minus(a, zero), a),
                ("a +M 0 = a", self.plus_m(a, zero), a),
                ("a +I 0 = a", self.plus_i(a, zero), a),
                ("a *M 0 = 0", self.times_m(a, zero), zero),
                ("0 *M a = 0", self.times_m(zero, a), zero),
            ]
            for label, got, expected in checks:
                if not self.equal(got, expected):
                    raise StructureError(
                        f"structure {self.name!r} violates zero axiom {label} at a={a!r}: "
                        f"got {got!r}, expected {expected!r}"
                    )

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class Homomorphism:
    """A mapping between Update-Structures (Definition 4.1).

    Wraps a callable ``h`` together with its source and target structures;
    :meth:`check` samples the six commutation conditions, and
    :meth:`compose_env` turns a valuation into the source structure into
    one into the target (the practical use of Proposition 4.2).
    """

    def __init__(self, source: UpdateStructure, target: UpdateStructure, fn: Callable):
        self.source = source
        self.target = target
        self.fn = fn

    def __call__(self, value):
        return self.fn(value)

    def check(self, elements: Iterable[object]) -> None:
        """Raise :class:`StructureError` on the first violated condition."""
        elements = list(elements)
        h, s, t = self.fn, self.source, self.target
        if not t.equal(h(s.zero), t.zero):
            raise StructureError(f"h(0) = {h(s.zero)!r} != 0 = {t.zero!r}")
        ops = [
            ("+I", s.plus_i, t.plus_i),
            ("+M", s.plus_m, t.plus_m),
            ("*M", s.times_m, t.times_m),
            ("-", s.minus, t.minus),
            ("+", s.plus, t.plus),
        ]
        for a in elements:
            for b in elements:
                for label, src_op, tgt_op in ops:
                    left = h(src_op(a, b))
                    right = tgt_op(h(a), h(b))
                    if not t.equal(left, right):
                        raise StructureError(
                            f"h(a {label} b) != h(a) {label} h(b) at a={a!r}, b={b!r}: "
                            f"{left!r} != {right!r}"
                        )

    def compose_env(self, env: Mapping[str, object] | Callable[[str], object]):
        """The valuation ``name -> h(env(name))`` into the target structure."""
        lookup = env if callable(env) else env.__getitem__
        return lambda name: self.fn(lookup(name))


class Valuation:
    """A convenient valuation: explicit assignments over a default factory.

    ``Valuation(default=True, p1=False)`` maps ``p1`` to ``False`` and
    everything else to ``True`` — the shape deletion-propagation and
    abortion what-ifs need.
    """

    def __init__(self, default=None, default_factory: Callable[[str], object] | None = None, **named):
        if default is not None and default_factory is not None:
            raise ValueError("pass either default or default_factory")
        self._named = dict(named)
        if default_factory is not None:
            self._factory = default_factory
        elif default is not None:
            self._factory = lambda _name: default
        else:
            self._factory = None

    def set(self, name: str, value) -> "Valuation":
        self._named[name] = value
        return self

    def __call__(self, name: str):
        if name in self._named:
            return self._named[name]
        if self._factory is None:
            raise KeyError(f"no value for annotation {name!r} and no default")
        return self._factory(name)

    def __repr__(self) -> str:
        return f"Valuation({self._named})"
