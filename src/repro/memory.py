"""Process-memory introspection helpers (no external dependencies).

Current RSS is read from ``/proc/self/status`` where available (Linux);
peak RSS from ``resource.getrusage`` (kilobytes on Linux, bytes on
macOS — normalized to bytes here).  Both return 0 on platforms exposing
neither, so callers can always record the numbers unconditionally.
"""

from __future__ import annotations

import sys

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX
    resource = None  # type: ignore[assignment]

__all__ = ["current_rss_bytes", "peak_rss_bytes"]


def current_rss_bytes() -> int:
    """Resident set size of this process right now, in bytes (0 if unknown)."""
    try:
        with open("/proc/self/status", encoding="ascii") as status:
            for line in status:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        pass
    return peak_rss_bytes()  # better than nothing: RSS never exceeds the peak


def peak_rss_bytes() -> int:
    """Peak resident set size of this process, in bytes (0 if unknown).

    Monotone over the process lifetime — comparisons that need a
    per-workload peak must run each workload in its own process (see
    ``repro.bench.memchild``).
    """
    if resource is None:  # pragma: no cover - non-POSIX
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - macOS reports bytes
        return int(peak)
    return int(peak) * 1024
