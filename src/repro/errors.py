"""Exception hierarchy for the repro package."""

__all__ = [
    "ReproError",
    "SchemaError",
    "QueryError",
    "ParseError",
    "EngineError",
    "StructureError",
    "StorageError",
    "ServerError",
    "ReplicationError",
]


class ReproError(Exception):
    """Base class for all repro errors."""


class SchemaError(ReproError):
    """Invalid schema, unknown relation/attribute, arity mismatch."""


class QueryError(ReproError):
    """Ill-formed hyperplane update query."""


class ParseError(ReproError):
    """Syntax error in the SQL fragment or the datalog-style language."""

    def __init__(self, message: str, position: int | None = None, text: str | None = None):
        self.position = position
        self.text = text
        if position is not None and text is not None:
            line = text.count("\n", 0, position) + 1
            col = position - (text.rfind("\n", 0, position) + 1) + 1
            message = f"{message} (line {line}, column {col})"
        super().__init__(message)


class EngineError(ReproError):
    """Engine misuse (unknown policy, annotation clashes, ...)."""


class StructureError(ReproError):
    """A candidate Update-Structure violates the required axioms."""


class StorageError(ReproError):
    """Serialization / persistence failures."""


class ServerError(ReproError):
    """Wire-protocol violations and provenance-service failures."""


class ReplicationError(ReproError):
    """Journal-shipping failures: sequence gaps, divergence, lost primaries."""
