"""Durability: write-ahead journal, checkpoints, crash recovery.

The paper's engine is defined by its update log — provenance is the
algebraic residue of a sequence of hyperplane updates — so durability is
log-shaped too: journal every update as it is applied
(:mod:`~repro.wal.journal`), periodically checkpoint the full annotated
state through :class:`~repro.storage.snapshot.AnnotatedSnapshot` and
truncate the journal (:mod:`~repro.wal.checkpoint`), and recover by
loading the newest checkpoint and replaying only the log tail
(:mod:`~repro.wal.recovery`).  See the durability section of
``docs/ARCHITECTURE.md`` for the record format and the recovery
invariant.

Quickstart::

    from repro.wal import JournaledEngine, recover

    engine = JournaledEngine(db, "state/", policy="normal_form_batch")
    engine.apply(log)          # every update journaled before it applies
    # -- crash --
    engine = recover("state/") # checkpoint + tail; bit-identical state
"""

from .checkpoint import CheckpointManager
from .engine import JournaledEngine, RESUMABLE_POLICIES
from .journal import Journal, JournalScan, SYNC_POLICIES, scan_journal, truncate_torn_tail
from .recovery import RecoveryReport, recover

__all__ = [
    "CheckpointManager",
    "Journal",
    "JournalScan",
    "JournaledEngine",
    "RESUMABLE_POLICIES",
    "RecoveryReport",
    "SYNC_POLICIES",
    "recover",
    "scan_journal",
    "truncate_torn_tail",
]
