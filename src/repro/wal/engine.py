"""The durable engine: journal every update, checkpoint, survive crashes.

:class:`JournaledEngine` is an :class:`~repro.engine.engine.Engine` whose
journal hook writes to an append-only :class:`~repro.wal.journal.Journal`
and whose checkpoints go through a
:class:`~repro.wal.checkpoint.CheckpointManager`.  The durable directory
is self-contained: creation writes a *baseline checkpoint* of the initial
annotated database, so :func:`repro.wal.recovery.recover` never needs the
original input to rebuild the exact pre-crash state.

Checkpoints fire only at quiescent points — after a top-level query,
transaction, or iterable element has been fully applied, never inside a
transaction — because a checkpoint observes provenance, and observation
flushes the ``normal_form_batch`` policy.  Under :meth:`apply_batch`,
fused runs therefore never cross top-level iterable elements (same final
state and provenance as the un-journaled pipeline; only run-boundary
accounting differs).

Only policies whose annotation slots are plain UP[X] expressions can be
journaled with checkpoints — ``naive`` and ``normal_form_batch`` — since
only those resume from an expression snapshot (``normal_form`` keeps
Theorem 5.3 state machines, ``none`` keeps no provenance at all).  To
journal any other policy without checkpoint/recover support, pass a bare
:class:`Journal` to ``Engine(journal=...)`` directly.
"""

from __future__ import annotations

import time
from typing import Callable, Iterable

from ..core.expr import register_expr_roots
from ..db.database import Database
from ..engine.engine import Engine
from ..errors import EngineError, ReproError, StorageError
from ..queries.updates import Transaction, UpdateQuery
from ..workloads.logs import log_from_events
from .checkpoint import DEFAULT_EVERY_RECORDS, CheckpointManager
from .journal import Journal, records_to_events

__all__ = ["JournaledEngine", "RESUMABLE_POLICIES"]

#: Policies whose checkpoints can be resumed (see ``restore_executor``).
RESUMABLE_POLICIES = ("naive", "no_axioms", "normal_form_batch")


class JournaledEngine(Engine):
    """An engine with a write-ahead journal and checkpointed durability."""

    def __init__(
        self,
        database: Database,
        directory,
        policy: str = "naive",
        annotate: Callable[[str, tuple, int], str] | None = None,
        sync: str = "flush",
        checkpoint_every: int = DEFAULT_EVERY_RECORDS,
        checkpoint_rows: int | None = None,
        clock: Callable[[], float] = time.perf_counter,
        _resume=None,
    ):
        if policy not in RESUMABLE_POLICIES:
            raise EngineError(
                f"policy {policy!r} cannot be journaled with checkpoints "
                f"(resumable policies: {', '.join(RESUMABLE_POLICIES)}); "
                "pass Engine(journal=...) a bare Journal to log without them"
            )
        self.checkpoints = CheckpointManager(
            directory, every_records=checkpoint_every, every_rows=checkpoint_rows
        )
        #: RecoveryReport when this engine came out of ``recover()``.
        self.recovery = None
        if _resume is None:
            if self.checkpoints.has_checkpoint():
                raise StorageError(
                    f"{self.checkpoints.directory} already holds a journaled "
                    "engine; use repro.wal.recover() to resume it"
                )
            super().__init__(database, policy, annotate, clock)
            self.checkpoints.directory.mkdir(parents=True, exist_ok=True)
            self.journal = Journal(self.checkpoints.journal_path, sync=sync)
            self._rows_at_checkpoint = 0
            # Baseline checkpoint: the initial annotated database, so the
            # directory alone reproduces any later state.
            self.checkpoints.write(self, self.journal)
        else:
            super().__init__(Database(_resume.executor.schema), policy, annotate, clock)
            self.executor = _resume.executor
            self.stats = _resume.stats
            self._rows_at_checkpoint = _resume.rows_at_checkpoint
            self._replay(_resume.tail_records)
            self.journal = Journal(
                self.checkpoints.journal_path,
                sync=sync,
                start_seq=_resume.next_seq_base,
                preexisting_records=len(_resume.tail_records),
            )
            if self._replay_skipped_final:
                # The final journaled query raised before mutating state
                # and the crash beat its abort record; append it now so
                # future recoveries skip the record without re-applying.
                self.journal.append_abort()
        # Sweep roots through the *currently attached* executor: the store
        # registers itself too, but this registration survives executor
        # swaps (recovery replaces the throwaway baseline executor above),
        # making the journaled backend explicitly sweep-safe.
        register_expr_roots(self)

    def expr_roots(self):
        """Live-expression roots: the attached executor's raw store slots."""
        store = getattr(self.executor, "store", None)
        if store is not None:
            yield from store.expr_roots()

    # -- replay (recovery only) ---------------------------------------------

    def _replay(self, tail_records: list[dict]) -> None:
        """Re-apply the journal tail with the journal hook detached.

        The tail decodes through the shared replay vocabulary: journal
        records become :meth:`UpdateLog.events` tuples (aborted queries
        dropped), :func:`log_from_events` regroups them into the original
        transactions — an unfinished trailing transaction stays bare
        queries, so its end-of-transaction hook does not fire — and each
        item goes through the ordinary :meth:`Engine.apply` machinery.
        """
        self.journal = None
        self._replay_skipped_final = False
        queries_before = self.stats.queries
        transactions_before = self.stats.transactions
        items = log_from_events(records_to_events(tail_records)).items
        for position, item in enumerate(items):
            try:
                Engine.apply(self, item)
            except Exception as exc:
                # Any exception, not just ReproError: the write path
                # abort-compensates every raising apply, so a failing
                # final query always means the crash beat its abort
                # record to disk — skip it and durably compensate.
                if position == len(items) - 1 and isinstance(item, UpdateQuery):
                    self._replay_skipped_final = True
                    continue
                if isinstance(exc, ReproError):
                    raise StorageError(
                        f"journal replay failed mid-tail on {item!r}: {exc}"
                    ) from exc
                raise
        self._replayed_queries = self.stats.queries - queries_before
        self._replayed_transactions = self.stats.transactions - transactions_before

    # -- checkpointing --------------------------------------------------------

    def maybe_checkpoint(self, force: bool = False) -> bool:
        """Checkpoint if a threshold is reached (or ``force`` with new work)."""
        records_since = self.journal.records_since_reset
        rows_since = self.stats.rows_created - self._rows_at_checkpoint
        if records_since <= 0:
            return False
        if force or self.checkpoints.due(records_since, rows_since):
            start = self._clock()
            self.checkpoints.write(self, self.journal)
            self.stats.checkpoint_time += self._clock() - start
            self._rows_at_checkpoint = self.stats.rows_created
            return True
        return False

    def checkpoint(self) -> bool:
        """Write a checkpoint now (no-op when the journal is empty)."""
        return self.maybe_checkpoint(force=True)

    def close(self, checkpoint: bool = True) -> None:
        """Checkpoint (by default) and close the journal file.

        ``close(checkpoint=False)`` leaves the journal tail in place —
        recovery then replays it, exactly as after a crash.
        """
        if checkpoint:
            self.maybe_checkpoint(force=True)
        self.journal.close()

    def __enter__(self) -> "JournaledEngine":
        return self

    def __exit__(self, exc_type, *_exc) -> None:
        # An exception mid-work is a crash, not a clean shutdown: keep the
        # journal tail so recovery replays it.
        self.close(checkpoint=exc_type is None)

    # -- applying (checkpoints at quiescent points) ---------------------------

    def apply(self, item) -> "JournaledEngine":
        super().apply(item)
        self.maybe_checkpoint()
        return self

    def apply_batch(self, item) -> "JournaledEngine":
        if isinstance(item, (UpdateQuery, Transaction)):
            super().apply_batch(item)
            self.maybe_checkpoint()
        elif isinstance(item, Iterable):
            for element in item:
                self.apply_batch(element)
        else:
            raise EngineError(f"cannot apply {type(item).__name__}")
        return self
