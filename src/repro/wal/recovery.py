"""Crash recovery: newest checkpoint + journal tail = pre-crash state.

:func:`recover` rebuilds a :class:`~repro.wal.engine.JournaledEngine`
from a durable directory alone:

1. load the newest checkpoint (atomic, so it is always complete);
2. restore the executor from it — rows, annotations, liveness,
   initial-tuple variable names, engine counters, planner counters;
3. scan the journal, truncating a torn final record cleanly;
4. replay every record with ``seq > checkpoint.journal_seq`` through the
   ordinary engine machinery (transaction-end hooks fire at their
   journaled positions);
5. reopen the journal for appending, sequence numbers continuing.

The recovery invariant — asserted across policies in ``tests/wal`` and
measured by ``bench.measure.recovery_comparison`` — is that the result is
*bit-identical* (rows, annotations by object identity, liveness) to
replaying the entire update history from scratch, while touching only the
log tail.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from ..engine.executors import Executor
from ..engine.stats import EngineStats
from ..storage.snapshot import restore_executor
from .checkpoint import DEFAULT_EVERY_RECORDS, CheckpointManager
from .engine import JournaledEngine
from .journal import scan_journal, truncate_torn_tail

__all__ = ["RecoveryReport", "recover"]


@dataclass
class RecoveryReport:
    """What :func:`recover` found and did."""

    policy: str
    #: last journal sequence number the checkpoint covered.
    checkpoint_seq: int
    #: records found in the journal beyond the checkpoint.
    tail_records: int
    #: queries re-applied from the tail.
    replayed_queries: int
    #: transaction-end hooks re-fired from the tail.
    replayed_transactions: int
    #: bytes of a torn final record that were cleanly truncated.
    torn_bytes_dropped: int
    #: True when the final journaled query had raised before mutating
    #: state and was skipped (its abort record is now durable).
    skipped_final_record: bool
    #: recovered state, for reporting.
    support_rows: int
    live_rows: int

    def as_dict(self) -> dict[str, object]:
        return {
            "policy": self.policy,
            "checkpoint_seq": self.checkpoint_seq,
            "tail_records": self.tail_records,
            "replayed_queries": self.replayed_queries,
            "replayed_transactions": self.replayed_transactions,
            "torn_bytes_dropped": self.torn_bytes_dropped,
            "skipped_final_record": self.skipped_final_record,
            "support_rows": self.support_rows,
            "live_rows": self.live_rows,
        }


@dataclass
class _ResumeState:
    """The restored parts handed to ``JournaledEngine(_resume=...)``."""

    executor: Executor
    stats: EngineStats
    rows_at_checkpoint: int
    tail_records: list
    next_seq_base: int


def recover(
    directory: str | Path,
    sync: str = "flush",
    checkpoint_every: int = DEFAULT_EVERY_RECORDS,
    checkpoint_rows: int | None = None,
    clock: Callable[[], float] = time.perf_counter,
) -> JournaledEngine:
    """Resume the journaled engine persisted in ``directory``.

    Returns a live :class:`JournaledEngine` at the exact pre-crash state,
    journal open for further updates, with a :class:`RecoveryReport` on
    its ``recovery`` attribute.  Raises
    :class:`~repro.errors.StorageError` when the directory holds no
    checkpoint or the journal is corrupt beyond a torn final record.
    """
    manager = CheckpointManager(
        directory, every_records=checkpoint_every, every_rows=checkpoint_rows
    )
    snapshot = manager.load()
    policy = str(snapshot.meta["policy"])
    checkpoint_seq = int(snapshot.meta["journal_seq"])

    executor = restore_executor(snapshot, policy)
    tuple_vars: dict[str, dict[tuple, str]] = {}
    for relation, row, name in snapshot.meta.get("tuple_vars", []):
        tuple_vars.setdefault(str(relation), {})[tuple(row)] = str(name)
    executor._tuple_vars = tuple_vars
    # The restored planner totals become the stats' baseline offset: the
    # rebuilt store's own counters restart at zero and honestly count only
    # post-recovery matchings; EngineStats.sync_planner adds the baseline
    # so the engine-level lifetime totals continue across the crash.
    stats = EngineStats.restore(snapshot.meta.get("stats"))

    scan = scan_journal(manager.journal_path)
    torn_dropped = truncate_torn_tail(manager.journal_path, scan)
    tail = [record for record in scan.records if record["seq"] > checkpoint_seq]

    engine = JournaledEngine(
        None,
        directory,
        policy=policy,
        sync=sync,
        checkpoint_every=checkpoint_every,
        checkpoint_rows=checkpoint_rows,
        clock=clock,
        _resume=_ResumeState(
            executor=executor,
            stats=stats,
            rows_at_checkpoint=stats.rows_created,
            tail_records=tail,
            next_seq_base=max(checkpoint_seq, scan.last_seq or 0),
        ),
    )
    engine.recovery = RecoveryReport(
        policy=policy,
        checkpoint_seq=checkpoint_seq,
        tail_records=len(tail),
        replayed_queries=engine._replayed_queries,
        replayed_transactions=engine._replayed_transactions,
        torn_bytes_dropped=torn_dropped,
        skipped_final_record=engine._replay_skipped_final,
        support_rows=engine.support_count(),
        live_rows=engine.live_count(),
    )
    return engine
