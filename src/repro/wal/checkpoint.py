"""Checkpoints: periodic durable snapshots that truncate the journal.

A journaled directory holds exactly two files::

    <dir>/checkpoint.sqlite   newest AnnotatedSnapshot (atomic os.replace)
    <dir>/journal.log         append-only record tail since that checkpoint

A checkpoint is the engine's full annotated state — captured from the
live :class:`~repro.store.annotation_store.AnnotationStore` through
:meth:`AnnotatedSnapshot.from_engine`, which for the ``normal_form_batch``
policy also flushes pending naive layers into normal form — plus the
resume metadata recovery needs:

``journal_seq``
    The last journal sequence number the checkpoint covers.  Written
    *into* the snapshot before the journal is reset, so a crash between
    the two leaves a journal whose covered prefix is recognizably stale
    (recovery replays only ``seq > journal_seq``).
``stats``
    :meth:`EngineStats.snapshot` counters, restored on recovery so a
    restarted engine keeps counting from where the crash left off.
``tuple_vars``
    The initial-tuple annotation names, so what-if valuations by tuple
    keep working on a recovered engine (plain ``restore_executor`` loses
    them).

The write order is the recovery invariant: snapshot first (atomically),
journal reset second.  Whatever the crash point, the newest complete
checkpoint plus the records with greater sequence numbers reproduce the
exact pre-crash state.
"""

from __future__ import annotations

from pathlib import Path

from ..errors import StorageError
from ..storage.snapshot import AnnotatedSnapshot, load_snapshot, save_snapshot

__all__ = ["CheckpointManager", "CHECKPOINT_FILE", "JOURNAL_FILE"]

CHECKPOINT_FILE = "checkpoint.sqlite"
JOURNAL_FILE = "journal.log"

#: Default checkpoint threshold: journal records since the last checkpoint.
DEFAULT_EVERY_RECORDS = 1024


class CheckpointManager:
    """Owns a journaled directory's layout and checkpoint policy."""

    def __init__(
        self,
        directory: str | Path,
        every_records: int = DEFAULT_EVERY_RECORDS,
        every_rows: int | None = None,
    ):
        if every_records is not None and every_records < 1:
            raise StorageError("checkpoint threshold every_records must be >= 1")
        if every_rows is not None and every_rows < 1:
            raise StorageError("checkpoint threshold every_rows must be >= 1")
        # No mkdir here: the manager is also constructed on the read path
        # (recover on a mistyped directory must not create it); the fresh
        # JournaledEngine creates the directory before opening its journal.
        self.directory = Path(directory)
        self.checkpoint_path = self.directory / CHECKPOINT_FILE
        self.journal_path = self.directory / JOURNAL_FILE
        self.every_records = every_records
        self.every_rows = every_rows
        #: checkpoints written by this process.
        self.written = 0

    def has_checkpoint(self) -> bool:
        return self.checkpoint_path.exists()

    def due(self, records_since: int, rows_created_since: int) -> bool:
        """True once either threshold is reached (and there is new work)."""
        if records_since <= 0:
            return False
        if self.every_records is not None and records_since >= self.every_records:
            return True
        return self.every_rows is not None and rows_created_since >= self.every_rows

    # -- writing ------------------------------------------------------------

    def write(self, engine, journal) -> AnnotatedSnapshot:
        """Snapshot ``engine`` atomically, then truncate ``journal``.

        Must be called at a quiescent point (between top-level updates,
        never mid-transaction): the snapshot observes provenance, which
        flushes the ``normal_form_batch`` policy.
        """
        executor = engine.executor
        tuple_vars = [
            [relation, list(row), name]
            for relation, names in getattr(executor, "_tuple_vars", {}).items()
            for row, name in names.items()
        ]
        snapshot = AnnotatedSnapshot.from_engine(
            engine,
            meta={
                "policy": engine.policy,
                "journal_seq": journal.last_seq,
                "stats": engine.stats.snapshot(),
                "tuple_vars": tuple_vars,
            },
        )
        # Under the fsync policy the snapshot must be durably on disk
        # *before* the reset truncates the journal — otherwise power loss
        # could persist the truncation but not the rename, losing every
        # record since the previous checkpoint.
        save_snapshot(
            snapshot, self.checkpoint_path, fsync=journal.sync_policy == "fsync"
        )
        journal.reset()
        self.written += 1
        return snapshot

    # -- reading ------------------------------------------------------------

    def load(self) -> AnnotatedSnapshot:
        if not self.has_checkpoint():
            raise StorageError(
                f"no checkpoint in {self.directory} (nothing to recover; a "
                "JournaledEngine writes its baseline checkpoint on creation)"
            )
        snapshot = load_snapshot(self.checkpoint_path)
        if "journal_seq" not in snapshot.meta or "policy" not in snapshot.meta:
            raise StorageError(
                f"snapshot {self.checkpoint_path} is not a WAL checkpoint "
                "(missing journal_seq/policy metadata)"
            )
        return snapshot
