"""The append-only write-ahead journal.

One durable record per engine event, one line per record::

    crc32-hex SP payload-json LF

The payload is a compact JSON object carrying a monotonically increasing
sequence number plus the event itself; queries serialize through the same
codec as update logs (:func:`repro.workloads.logs.query_to_dict`), so a
journal line is replayable with the exact annotation, pattern and
assignments of the original update.  The CRC covers the payload bytes *as
written*: verification never depends on JSON canonicalization, and any
torn byte — in the checksum, the payload, or a missing trailing newline —
makes the line invalid.

Record kinds (see :meth:`UpdateLog.events` for the replay vocabulary):

``query``
    One hyperplane update, journaled *before* it is applied (write-ahead:
    a crash mid-apply re-applies the record on recovery).
``txn_end``
    A transaction boundary — exactly where
    :meth:`Executor.on_transaction_end` fires (the flush point of the
    ``normal_form_batch`` policy).
``batch_end``
    A fused-run boundary of the batched pipeline.  Audit only: runs are
    bit-identical to sequential application, so replay ignores it.
``abort``
    The immediately preceding ``query`` record raised before mutating any
    state (validation errors).  Replay skips the aborted record.

Sync policies trade durability for throughput:

``"none"``
    Buffered writes; records reach the OS only when the buffer fills or
    the journal is closed.  A process crash loses the buffered tail.
``"flush"`` (default)
    Flush to the OS after every record: survives process crashes, may
    lose the tail on a kernel crash / power loss.
``"fsync"``
    ``os.fsync`` after every record: survives power loss, at the cost of
    one disk sync per update.

Torn final records are expected, not fatal: :func:`scan_journal` parses
the file up to the last complete, checksummed record and reports the torn
tail so recovery can truncate it cleanly.  A *valid record after garbage*
is not a torn write (appends are sequential), so it raises
:class:`StorageError` instead of silently dropping data.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Mapping

from ..errors import StorageError
from ..queries.updates import UpdateQuery
from ..workloads.logs import query_from_dict, query_to_dict

__all__ = [
    "Journal",
    "JournalScan",
    "JournalTail",
    "SYNC_POLICIES",
    "encode_record",
    "parse_line",
    "records_to_events",
    "scan_journal",
    "tail_journal",
    "truncate_torn_tail",
]

SYNC_POLICIES = ("none", "flush", "fsync")

QUERY = "query"
TXN_END = "txn_end"
BATCH_END = "batch_end"
ABORT = "abort"
_KINDS = frozenset((QUERY, TXN_END, BATCH_END, ABORT))


def encode_record(seq: int, kind: str, payload: Mapping[str, object]) -> bytes:
    """One journal line (checksum, space, compact JSON, newline)."""
    body = {"seq": seq, "kind": kind, **payload}
    data = json.dumps(body, sort_keys=True, separators=(",", ":")).encode("utf-8")
    return b"%08x %s\n" % (zlib.crc32(data), data)


def parse_line(line: bytes) -> dict | None:
    """Decode one journal line; ``None`` if torn/invalid in any way."""
    if len(line) < 10 or line[8:9] != b" ":
        return None
    try:
        crc = int(line[:8], 16)
    except ValueError:
        return None
    data = line[9:]
    if zlib.crc32(data) != crc:
        return None
    try:
        record = json.loads(data)
    except (json.JSONDecodeError, UnicodeDecodeError):
        return None
    if not isinstance(record, dict) or record.get("kind") not in _KINDS:
        return None
    if not isinstance(record.get("seq"), int):
        return None
    return record


@dataclass
class JournalScan:
    """The readable prefix of a journal file."""

    #: decoded records, in file order (sequence numbers strictly increase).
    records: list[dict]
    #: byte offset just past the last complete record.
    good_bytes: int
    #: True if trailing bytes formed no complete record (torn final write).
    torn: bool
    #: number of trailing bytes the torn record occupies.
    torn_bytes: int

    @property
    def last_seq(self) -> int | None:
        return self.records[-1]["seq"] if self.records else None


def scan_journal(path: str | Path) -> JournalScan:
    """Parse a journal file, stopping cleanly at a torn final record.

    A missing file is an empty journal.  Sequence numbers must strictly
    increase; a decrease means the file was spliced, not torn, and raises
    :class:`StorageError` — as does any complete record *after* unreadable
    bytes, which sequential appends can never produce.
    """
    path = Path(path)
    try:
        data = path.read_bytes()
    except FileNotFoundError:
        return JournalScan([], 0, False, 0)
    records: list[dict] = []
    offset = 0
    size = len(data)
    while offset < size:
        newline = data.find(b"\n", offset)
        record = parse_line(data[offset:newline]) if newline != -1 else None
        if record is None:
            # Torn tail — unless a complete record follows on a *later*
            # line, which means mid-file corruption rather than an
            # interrupted final append.  (A newline-less final line is
            # the torn record itself, even if its bytes happen to parse.)
            rest = b"" if newline == -1 else data[newline + 1 :]
            for candidate in rest.split(b"\n"):
                if candidate and parse_line(candidate) is not None:
                    raise StorageError(
                        f"corrupt journal {path}: complete record after "
                        f"unreadable bytes at offset {offset}"
                    )
            return JournalScan(records, offset, True, size - offset)
        if records and record["seq"] <= records[-1]["seq"]:
            raise StorageError(
                f"corrupt journal {path}: sequence {record['seq']} after "
                f"{records[-1]['seq']}"
            )
        records.append(record)
        offset = newline + 1
    return JournalScan(records, offset, False, 0)


def truncate_torn_tail(path: str | Path, scan: JournalScan) -> int:
    """Cut a torn final record off the file; returns bytes removed."""
    if not scan.torn:
        return 0
    with open(path, "r+b") as handle:
        handle.truncate(scan.good_bytes)
        handle.flush()
        os.fsync(handle.fileno())
    return scan.torn_bytes


@dataclass
class JournalTail:
    """One incremental read of a journal that is still being appended.

    Unlike :class:`JournalScan` (a post-crash full-file scan), a tail read
    happens *while* the writer lives, so three end states must stay
    distinguishable:

    * **clean end** — ``pending_bytes == 0`` and ``truncated`` is False:
      every byte past ``offset`` formed complete records; ship them all.
    * **in-progress final frame** — ``pending_bytes > 0``: the writer's
      last append has not fully reached the file yet.  The bytes are
      *not* part of ``records`` and must never be shipped; the next read
      from ``next_offset`` sees the completed frame.
    * **reset** — ``truncated`` is True: the file is now *shorter* than
      ``offset`` (a checkpoint truncated it).  Naive tailing would read
      a clean EOF here and silently skip every record the reset covered;
      the caller must resync (re-read from 0, or fall back to a
      checkpoint transfer).
    """

    #: decoded records, in file order (sequence numbers strictly increase).
    records: list[dict]
    #: raw line bytes (newline included), parallel to ``records`` — what a
    #: shipper forwards verbatim so receivers re-verify the original CRC.
    lines: list[bytes]
    #: byte offset just past the last complete record (resume point).
    next_offset: int
    #: trailing bytes of an incomplete final frame (never shipped).
    pending_bytes: int
    #: True when the file shrank below ``offset`` — the journal was reset.
    truncated: bool

    @property
    def last_seq(self) -> int | None:
        return self.records[-1]["seq"] if self.records else None


def tail_journal(
    path: str | Path, offset: int = 0, last_seq: int | None = None
) -> JournalTail:
    """Read the complete frames appended past ``offset``; never a partial one.

    This is the shipper's read primitive.  A frame is shipped only once
    its trailing newline is visible — the writer appends each line with a
    single buffered write, so a visible newline proves every byte before
    it is in the file, and a newline-terminated line that still fails its
    CRC is genuine corruption (:class:`StorageError`), not an append in
    progress.  ``last_seq`` (when given) asserts the first returned
    record continues the caller's sequence — a non-increasing sequence
    means the caller's offset bookkeeping is stale and raises rather
    than silently re-shipping.
    """
    path = Path(path)
    if offset < 0:
        raise StorageError(f"tail offset must be >= 0, got {offset}")
    try:
        with open(path, "rb") as handle:
            size = os.fstat(handle.fileno()).st_size
            if size < offset:
                return JournalTail([], [], offset, 0, True)
            handle.seek(offset)
            data = handle.read()
    except FileNotFoundError:
        return JournalTail([], [], offset, 0, offset > 0)
    records: list[dict] = []
    lines: list[bytes] = []
    position = 0
    end = len(data)
    previous = last_seq
    while position < end:
        newline = data.find(b"\n", position)
        if newline == -1:
            # The in-progress (or torn) final frame: report, never ship.
            return JournalTail(
                records, lines, offset + position, end - position, False
            )
        line = data[position : newline + 1]
        record = parse_line(data[position:newline])
        if record is None:
            raise StorageError(
                f"corrupt journal {path}: unreadable complete line at "
                f"offset {offset + position}"
            )
        seq = record["seq"]
        if previous is not None and seq <= previous:
            raise StorageError(
                f"corrupt journal {path}: sequence {seq} after {previous}"
            )
        records.append(record)
        lines.append(line)
        previous = seq
        position = newline + 1
    return JournalTail(records, lines, offset + position, 0, False)


def records_to_events(records: list[dict]) -> Iterator[tuple[str, object]]:
    """Decode journal records into the :meth:`UpdateLog.events` vocabulary.

    ``abort`` records cancel their preceding ``query`` record (the apply
    raised before mutating state); ``batch_end`` markers are audit-only
    and emit nothing.  Events are yielded lazily but aborts look one
    record ahead, so the input is the materialized record list a
    :func:`scan_journal` already produced.
    """
    index = 0
    total = len(records)
    while index < total:
        record = records[index]
        kind = record["kind"]
        if kind == QUERY:
            if index + 1 < total and records[index + 1]["kind"] == ABORT:
                index += 2  # the apply raised; skip both records
                continue
            try:
                query = query_from_dict(record["query"])
            except (KeyError, TypeError, ValueError, StorageError) as exc:
                raise StorageError(
                    f"journal record {record.get('seq')} does not decode: {exc}"
                ) from exc
            yield (QUERY, query)
        elif kind == TXN_END:
            yield (TXN_END, str(record["name"]))
        elif kind == ABORT:
            raise StorageError(
                f"journal record {record.get('seq')}: abort without a "
                "preceding query record"
            )
        # BATCH_END: audit only.
        index += 1


class Journal:
    """An open, append-only journal file with a sync policy.

    Satisfies the :class:`~repro.engine.engine.Engine` journal hook
    (``append_query`` / ``append_txn_end`` / ``append_batch_end``).
    Sequence numbers continue across checkpoint truncations — recovery
    filters the tail by ``seq > checkpoint seq``, so a crash *between*
    writing a checkpoint and resetting the journal replays nothing twice.
    """

    def __init__(
        self,
        path: str | Path,
        sync: str = "flush",
        start_seq: int = 0,
        preexisting_records: int = 0,
    ):
        if sync not in SYNC_POLICIES:
            raise StorageError(
                f"unknown sync policy {sync!r} (known: {', '.join(SYNC_POLICIES)})"
            )
        self.path = Path(path)
        self.sync_policy = sync
        self._seq = start_seq
        self._file = open(self.path, "ab")
        #: records appended since the last checkpoint reset (drives the
        #: checkpoint threshold; recovery seeds it with the tail length).
        self.records_since_reset = preexisting_records
        #: records appended by this process over the journal's lifetime.
        self.appended = 0
        #: Replication hooks.  ``on_append(seq, line)`` fires after a
        #: record is durably written (per the sync policy) — a shipped
        #: record is therefore never ahead of the writer's own disk.
        #: ``on_reset(covered_seq)`` fires after a checkpoint truncation.
        #: Both run on the appending thread and must not raise.
        self.on_append = None
        self.on_reset = None

    @property
    def last_seq(self) -> int:
        return self._seq

    @property
    def closed(self) -> bool:
        return self._file.closed

    # -- appending ------------------------------------------------------------

    def append_query(self, query: UpdateQuery) -> int:
        return self._append(QUERY, {"query": query_to_dict(query)})

    def append_txn_end(self, name: str) -> int:
        return self._append(TXN_END, {"name": name})

    def append_batch_end(self, n_queries: int) -> int:
        return self._append(BATCH_END, {"queries": n_queries})

    def append_abort(self) -> int:
        return self._append(ABORT, {"undo": self._seq})

    def _append(self, kind: str, payload: Mapping[str, object]) -> int:
        self._seq += 1
        line = encode_record(self._seq, kind, payload)
        self._file.write(line)
        if self.sync_policy != "none":
            self._file.flush()
            if self.sync_policy == "fsync":
                os.fsync(self._file.fileno())
        self.records_since_reset += 1
        self.appended += 1
        if self.on_append is not None:
            self.on_append(self._seq, line)
        return self._seq

    def append_raw(self, line: bytes, seq: int) -> int:
        """Append one pre-encoded record line verbatim (replication apply).

        The line's bytes — CRC included — are written exactly as the
        primary produced them, so a follower's journal file is
        byte-identical to the primary's record stream.  ``seq`` must be
        the next sequence number; shipping resumes from the last durable
        record, so a gap here means frames were lost in transit.
        """
        if seq != self._seq + 1:
            raise StorageError(
                f"raw append out of sequence: got {seq}, expected {self._seq + 1}"
            )
        self._file.write(line)
        if self.sync_policy != "none":
            self._file.flush()
            if self.sync_policy == "fsync":
                os.fsync(self._file.fileno())
        self._seq = seq
        self.records_since_reset += 1
        self.appended += 1
        if self.on_append is not None:
            self.on_append(seq, line)
        return seq

    # -- lifecycle ------------------------------------------------------------

    def reset(self) -> None:
        """Empty the file after a checkpoint covered every record in it.

        Sequence numbers are *not* reset — they order records across the
        journal's whole lifetime, and recovery relies on comparing them
        against the checkpoint's ``journal_seq``.
        """
        self._file.flush()
        self._file.truncate(0)
        if self.sync_policy == "fsync":
            os.fsync(self._file.fileno())
        self.records_since_reset = 0
        if self.on_reset is not None:
            self.on_reset(self._seq)

    def sync(self) -> None:
        """Force everything appended so far to disk, whatever the policy."""
        self._file.flush()
        os.fsync(self._file.fileno())

    def close(self) -> None:
        if not self._file.closed:
            self._file.flush()
            self._file.close()

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"Journal({str(self.path)!r}, sync={self.sync_policy!r}, "
            f"seq={self._seq})"
        )
