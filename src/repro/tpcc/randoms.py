"""TPC-C random primitives (spec clause 2.1 and 4.3).

* :func:`NURand` — the non-uniform random distribution used to pick
  customers and items (``NURand(A, x, y) = (((random(0,A) | random(x,y))
  + C) % (y - x + 1)) + x``);
* :func:`random_last_name` — customer last names built from the spec's
  ten syllables;
* :func:`random_a_string` / :func:`random_n_string` — alphanumeric and
  numeric filler strings;
* :func:`random_money_cents` — uniform money amounts in integer cents.

All functions take an explicit :class:`random.Random` so workload
generation is reproducible under a single seed.
"""

from __future__ import annotations

import random

__all__ = [
    "SYLLABLES",
    "NURand",
    "make_c_constants",
    "random_a_string",
    "random_last_name",
    "random_money_cents",
    "random_n_string",
]

#: The spec's last-name syllables (clause 4.3.2.3).
SYLLABLES = ("BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING")

_ALPHA = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
_DIGITS = "0123456789"


def make_c_constants(rng: random.Random) -> dict[int, int]:
    """The per-run ``C`` constants for the three NURand uses (clause 2.1.6.1)."""
    return {255: rng.randint(0, 255), 1023: rng.randint(0, 1023), 8191: rng.randint(0, 8191)}


def NURand(rng: random.Random, A: int, x: int, y: int, C: int) -> int:
    """Non-uniform random over ``[x, y]`` (spec clause 2.1.6)."""
    return (((rng.randint(0, A) | rng.randint(x, y)) + C) % (y - x + 1)) + x


def random_last_name(number: int) -> str:
    """The deterministic syllable name for ``number`` in ``[0, 999]``."""
    number %= 1000
    return SYLLABLES[number // 100] + SYLLABLES[(number // 10) % 10] + SYLLABLES[number % 10]


def random_a_string(rng: random.Random, low: int, high: int) -> str:
    """A random alphanumeric string of length in ``[low, high]``."""
    return "".join(rng.choice(_ALPHA) for _ in range(rng.randint(low, high)))


def random_n_string(rng: random.Random, low: int, high: int) -> str:
    """A random numeric string of length in ``[low, high]`` (zip codes)."""
    return "".join(rng.choice(_DIGITS) for _ in range(rng.randint(low, high)))


def random_money_cents(rng: random.Random, low_cents: int, high_cents: int) -> int:
    """A uniform amount in integer cents."""
    return rng.randint(low_cents, high_cents)
