"""The five TPC-C transaction profiles as hyperplane-update emitters.

Each profile is a function ``(state, rng) -> list[UpdateQuery]`` that
draws its inputs per the spec (clause 2.4-2.8), updates the shadow
:class:`~repro.tpcc.loader.TPCCState`, and returns the *write* statements
as constant-only hyperplane queries — exactly the statements the paper's
"Note" in Section 2 identifies as the SQL fragment:

=============  ==================================================================
New-Order      ``UPDATE DISTRICT SET D_NEXT_O_ID``, ``INSERT ORDERS``,
               ``INSERT NEW_ORDER``, per item ``UPDATE STOCK`` +
               ``INSERT ORDER_LINE``  (2.4.2)
Payment        ``UPDATE WAREHOUSE/DISTRICT SET ytd``, ``UPDATE CUSTOMER SET
               balance...``, ``INSERT HISTORY``  (2.5.2)
Order-Status   read-only — no update queries  (2.6)
Delivery       per district: ``DELETE NEW_ORDER``, ``UPDATE ORDERS SET
               carrier``, ``UPDATE ORDER_LINE SET delivery date``,
               ``UPDATE CUSTOMER SET balance``  (2.7.4)
Stock-Level    read-only — no update queries  (2.8)
=============  ==================================================================

Reads (customer lookup by last name, stock level counts, ...) are served
from the shadow state; only writes enter the log, because only writes have
provenance under the update model.
"""

from __future__ import annotations

import random
from typing import Callable, Sequence

from ..queries.pattern import Pattern
from ..queries.updates import Delete, Insert, Modify, UpdateQuery
from .loader import NO_CARRIER, TPCCState
from .randoms import NURand, random_money_cents
from .schema import TPCC_TABLES

__all__ = [
    "STANDARD_MIX",
    "TRANSACTION_TYPES",
    "delivery",
    "new_order",
    "order_status",
    "payment",
    "stock_level",
]

_COLUMNS = {name: {c: i for i, c in enumerate(cols)} for name, cols in TPCC_TABLES.items()}
_ARITY = {name: len(cols) for name, cols in TPCC_TABLES.items()}


def _where(table: str, **eq: object) -> Pattern:
    positions = _COLUMNS[table]
    return Pattern(_ARITY[table], eq={positions[c]: v for c, v in eq.items()})


def _set(table: str, **assignments: object) -> dict[int, object]:
    positions = _COLUMNS[table]
    return {positions[c]: v for c, v in assignments.items()}


def _update(table: str, where: dict[str, object], sets: dict[str, object]) -> Modify:
    return Modify(table, _where(table, **where), _set(table, **sets))


# ---------------------------------------------------------------------------
# Input generation helpers
# ---------------------------------------------------------------------------


def _pick_warehouse(state: TPCCState, rng: random.Random) -> int:
    return rng.randint(1, state.scale.warehouses)


def _pick_district(state: TPCCState, rng: random.Random) -> int:
    return rng.randint(1, state.scale.districts_per_warehouse)


def _scaled_a(span: int) -> int:
    """The NURand ``A`` parameter scaled to a shrunken span.

    The spec pairs A=1023 with 3000 customers and A=8191 with 100k items;
    both make ``A`` a power-of-two-minus-one in the order of ``span / 4``.
    Keeping that ratio preserves the *skew* (hot customers / hot items)
    when the cardinalities are scaled down — mod-folding a fixed A=8191
    into a span of 100 would flatten it to uniform.
    """
    a = 1
    while a * 4 < span:
        a = (a << 1) | 1
    return a


def _pick_customer(state: TPCCState, rng: random.Random) -> int:
    span = state.scale.customers_per_district
    return 1 + NURand(rng, _scaled_a(span), 0, span - 1, state.c_constants[1023] % span)


def _pick_item(state: TPCCState, rng: random.Random) -> int:
    span = state.scale.items
    return 1 + NURand(rng, _scaled_a(span), 0, span - 1, state.c_constants[8191] % span)


# ---------------------------------------------------------------------------
# The profiles
# ---------------------------------------------------------------------------


def new_order(state: TPCCState, rng: random.Random) -> list[UpdateQuery]:
    """Clause 2.4: enter an order, decrement stock, create order lines."""
    w_id = _pick_warehouse(state, rng)
    d_id = _pick_district(state, rng)
    c_id = _pick_customer(state, rng)
    ol_cnt = rng.randint(5, 15)
    entry_d = state.tick()

    o_id = state.next_o_id[(w_id, d_id)]
    state.next_o_id[(w_id, d_id)] = o_id + 1
    queries: list[UpdateQuery] = [
        _update(
            "DISTRICT",
            where={"D_W_ID": w_id, "D_ID": d_id},
            sets={"D_NEXT_O_ID": o_id + 1},
        ),
        Insert("ORDERS", (o_id, d_id, w_id, c_id, entry_d, NO_CARRIER, ol_cnt, 1)),
        Insert("NEW_ORDER", (o_id, d_id, w_id)),
    ]

    total = 0
    lines_seen: set[int] = set()
    for number in range(1, ol_cnt + 1):
        i_id = _pick_item(state, rng)
        while i_id in lines_seen:  # one stock row per item and order
            i_id = _pick_item(state, rng)
        lines_seen.add(i_id)
        quantity = rng.randint(1, 10)
        key = (w_id, i_id)
        s_qty = state.stock_qty[key]
        s_qty = s_qty - quantity if s_qty - quantity >= 10 else s_qty - quantity + 91
        state.stock_qty[key] = s_qty
        state.stock_ytd[key] += quantity
        state.stock_order_cnt[key] += 1
        queries.append(
            _update(
                "STOCK",
                where={"S_W_ID": w_id, "S_I_ID": i_id},
                sets={
                    "S_QUANTITY": s_qty,
                    "S_YTD": state.stock_ytd[key],
                    "S_ORDER_CNT": state.stock_order_cnt[key],
                },
            )
        )
        amount = quantity * state.item_price[i_id]
        total += amount
        queries.append(
            Insert(
                "ORDER_LINE",
                (o_id, d_id, w_id, number, i_id, w_id, 0, quantity, amount),
            )
        )
    state.order_info[(w_id, d_id, o_id)] = (c_id, ol_cnt, total)
    state.undelivered[(w_id, d_id)].append(o_id)
    return queries


def payment(state: TPCCState, rng: random.Random) -> list[UpdateQuery]:
    """Clause 2.5: pay a customer, bump warehouse/district YTD, log history."""
    w_id = _pick_warehouse(state, rng)
    d_id = _pick_district(state, rng)
    # 85% home district / 15% remote (spec 2.5.1.2); with one warehouse the
    # remote branch degenerates to home, which the spec also allows.
    if rng.random() < 0.85 or state.scale.warehouses == 1:
        c_w_id, c_d_id = w_id, d_id
    else:
        c_w_id = rng.choice([w for w in range(1, state.scale.warehouses + 1) if w != w_id])
        c_d_id = _pick_district(state, rng)
    c_id = _pick_customer(state, rng)
    amount = random_money_cents(rng, 100, 500_000)

    state.w_ytd[w_id] += amount
    state.d_ytd[(w_id, d_id)] += amount
    ckey = (c_w_id, c_d_id, c_id)
    state.customer_balance[ckey] -= amount
    state.customer_ytd_payment[ckey] += amount
    state.customer_payment_cnt[ckey] += 1

    return [
        _update("WAREHOUSE", where={"W_ID": w_id}, sets={"W_YTD": state.w_ytd[w_id]}),
        _update(
            "DISTRICT",
            where={"D_W_ID": w_id, "D_ID": d_id},
            sets={"D_YTD": state.d_ytd[(w_id, d_id)]},
        ),
        _update(
            "CUSTOMER",
            where={"C_W_ID": c_w_id, "C_D_ID": c_d_id, "C_ID": c_id},
            sets={
                "C_BALANCE": state.customer_balance[ckey],
                "C_YTD_PAYMENT": state.customer_ytd_payment[ckey],
                "C_PAYMENT_CNT": state.customer_payment_cnt[ckey],
            },
        ),
        Insert("HISTORY", (c_id, c_d_id, c_w_id, d_id, w_id, state.tick(), amount)),
    ]


def order_status(state: TPCCState, rng: random.Random) -> list[UpdateQuery]:
    """Clause 2.6: read-only — drives the mix but emits no updates."""
    _pick_customer(state, rng)  # consume randomness like a real driver
    return []


def delivery(state: TPCCState, rng: random.Random) -> list[UpdateQuery]:
    """Clause 2.7: deliver the oldest undelivered order of every district."""
    w_id = _pick_warehouse(state, rng)
    carrier = rng.randint(1, 10)
    delivery_d = state.tick()
    queries: list[UpdateQuery] = []
    for d_id in range(1, state.scale.districts_per_warehouse + 1):
        pending = state.undelivered.get((w_id, d_id))
        if not pending:
            continue  # spec 2.7.4.2: skip districts with no undelivered order
        o_id = pending.pop(0)
        c_id, _ol_cnt, total = state.order_info[(w_id, d_id, o_id)]
        ckey = (w_id, d_id, c_id)
        state.customer_balance[ckey] += total
        state.customer_delivery_cnt[ckey] += 1
        queries.extend(
            [
                Delete(
                    "NEW_ORDER",
                    _where("NEW_ORDER", NO_O_ID=o_id, NO_D_ID=d_id, NO_W_ID=w_id),
                ),
                _update(
                    "ORDERS",
                    where={"O_ID": o_id, "O_D_ID": d_id, "O_W_ID": w_id},
                    sets={"O_CARRIER_ID": carrier},
                ),
                # One statement delivers all of the order's lines — a
                # hyperplane update touching OL_CNT rows at once.
                _update(
                    "ORDER_LINE",
                    where={"OL_O_ID": o_id, "OL_D_ID": d_id, "OL_W_ID": w_id},
                    sets={"OL_DELIVERY_D": delivery_d},
                ),
                _update(
                    "CUSTOMER",
                    where={"C_W_ID": w_id, "C_D_ID": d_id, "C_ID": c_id},
                    sets={
                        "C_BALANCE": state.customer_balance[ckey],
                        "C_DELIVERY_CNT": state.customer_delivery_cnt[ckey],
                    },
                ),
            ]
        )
    return queries


def stock_level(state: TPCCState, rng: random.Random) -> list[UpdateQuery]:
    """Clause 2.8: read-only — emits no updates."""
    _pick_district(state, rng)
    return []


Profile = Callable[[TPCCState, random.Random], list[UpdateQuery]]

#: name -> profile function.
TRANSACTION_TYPES: dict[str, Profile] = {
    "new_order": new_order,
    "payment": payment,
    "order_status": order_status,
    "delivery": delivery,
    "stock_level": stock_level,
}

#: The spec's standard mix (clause 5.2.3 minimums, new-order remainder).
STANDARD_MIX: Sequence[tuple[str, float]] = (
    ("new_order", 0.45),
    ("payment", 0.43),
    ("order_status", 0.04),
    ("delivery", 0.04),
    ("stock_level", 0.04),
)
