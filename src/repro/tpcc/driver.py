"""The TPC-C driver: standard-mix transaction streams as update logs.

:func:`generate_tpcc` plays the role of the paper's py-tpcc setup: it
populates the database, then draws transactions from the standard mix and
records the hyperplane update queries each one performs.  The result is an
:class:`~repro.workloads.logs.UpdateLog` whose items are annotated
:class:`~repro.queries.updates.Transaction` objects (annotation =
transaction id), ready to be replayed under any provenance policy.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence

from ..db.database import Database
from ..db.schema import Schema
from ..errors import ReproError
from ..queries.updates import Transaction
from ..workloads.logs import UpdateLog
from .loader import TPCCScale, TPCCState, load_tpcc
from .transactions import STANDARD_MIX, TRANSACTION_TYPES

__all__ = ["TPCCWorkload", "generate_tpcc"]


@dataclass
class TPCCWorkload:
    """The populated database, the emitted log, and generation metadata."""

    scale: TPCCScale
    database: Database = field(repr=False)
    log: UpdateLog = field(repr=False)
    state: TPCCState = field(repr=False)
    mix_counts: dict[str, int] = field(default_factory=dict)

    @property
    def schema(self) -> Schema:
        return self.database.schema


def generate_tpcc(
    scale: TPCCScale | None = None,
    n_queries: int = 500,
    seed: int = 42,
    mix: Sequence[tuple[str, float]] = STANDARD_MIX,
    include_empty: bool = False,
) -> TPCCWorkload:
    """Populate TPC-C and emit a standard-mix log of ``>= n_queries`` queries.

    Transactions are drawn until the query budget is reached; the last
    transaction may overshoot it (a transaction is never split here — use
    :meth:`UpdateLog.prefix` for exact query-count sweeps).  Read-only
    transactions (order-status, stock-level) consume their slot in the mix
    but contribute no queries; with ``include_empty`` they appear in the
    log as empty transactions (handy when counting transactions, useless
    when counting queries).
    """
    scale = scale or TPCCScale()
    for name, _weight in mix:
        if name not in TRANSACTION_TYPES:
            raise ReproError(f"unknown TPC-C transaction type {name!r}")
    database, state = load_tpcc(scale, seed=seed)
    rng = random.Random(seed + 1)
    names = [name for name, _ in mix]
    weights = [weight for _, weight in mix]

    items: list[Transaction] = []
    mix_counts = {name: 0 for name in names}
    emitted = 0
    txn_id = 0
    while emitted < n_queries:
        name = rng.choices(names, weights=weights, k=1)[0]
        mix_counts[name] += 1
        queries = TRANSACTION_TYPES[name](state, rng)
        if not queries and not include_empty:
            continue
        txn_id += 1
        items.append(Transaction(f"{name}_{txn_id}", queries))
        emitted += len(queries)
    log = UpdateLog(
        items,
        meta={
            "name": "tpcc",
            "warehouses": scale.warehouses,
            "initial_tuples": database.total_rows(),
            "n_queries": emitted,
            "seed": seed,
            "mix": dict(mix_counts),
        },
    )
    return TPCCWorkload(scale, database, log, state, mix_counts)
