"""A TPC-C substrate emitting hyperplane update logs (paper Section 6.1).

The paper drove its evaluation with the TPC-C benchmark: the py-tpcc
implementation generated transaction logs (up to ~2000 update queries)
that were executed on the authors' provenance-tracking in-memory database.
This package is our from-scratch equivalent:

* :mod:`repro.tpcc.schema` — the nine TPC-C tables;
* :mod:`repro.tpcc.randoms` — the spec's random primitives (NURand,
  a-strings, customer last names);
* :mod:`repro.tpcc.loader` — scaled spec-style population;
* :mod:`repro.tpcc.transactions` — the five transaction profiles
  (New-Order, Payment, Order-Status, Delivery, Stock-Level) run against a
  lightweight shadow state to emit *concrete* hyperplane update queries;
* :mod:`repro.tpcc.driver` — the standard-mix driver producing an
  :class:`~repro.workloads.logs.UpdateLog`.

Every value an emitted query mentions is a constant computed by the
driver, which is exactly what executing a log means: the hyperplane
fragment (equality/disequality selections, constant assignments) covers
all TPC-C write statements.
"""

from .driver import TPCCWorkload, generate_tpcc
from .loader import TPCCScale, TPCCState, load_tpcc
from .randoms import NURand, random_a_string, random_last_name
from .schema import TPCC_TABLES, tpcc_schema
from .transactions import STANDARD_MIX, TRANSACTION_TYPES

__all__ = [
    "NURand",
    "STANDARD_MIX",
    "TPCCScale",
    "TPCCState",
    "TPCCWorkload",
    "TPCC_TABLES",
    "TRANSACTION_TYPES",
    "generate_tpcc",
    "load_tpcc",
    "random_a_string",
    "random_last_name",
    "tpcc_schema",
]
