"""Scaled TPC-C population (spec clause 4.3.3).

:func:`load_tpcc` builds the initial database *and* the shadow
:class:`TPCCState` the transaction profiles consult (next order ids,
stock quantities, customer balances, undelivered orders, per-order
amounts).  The state mirrors exactly the values stored in the database, so
the emitted constant-only hyperplane queries are consistent with what a
real TPC-C engine would have written.

Scaling: :class:`TPCCScale` shrinks the spec's cardinalities (3000
customers/district, 100k items, ...) by configurable factors while keeping
all structural invariants (orders 2101..3000 undelivered, ``O_OL_CNT``
order lines per order, one stock row per item and warehouse).  The paper's
2.1M-tuple instance corresponds to the spec's scale; the default here is
laptop/test-friendly and every count is a knob.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..db.database import Database
from ..errors import ReproError
from .randoms import (
    NURand,
    make_c_constants,
    random_a_string,
    random_last_name,
    random_money_cents,
    random_n_string,
)
from .schema import tpcc_schema

__all__ = ["TPCCScale", "TPCCState", "load_tpcc"]

#: Sentinel for "no carrier assigned yet" (spec uses SQL NULL).
NO_CARRIER = 0

#: Sentinel for "order line not delivered yet".
NOT_DELIVERED = 0


@dataclass(frozen=True)
class TPCCScale:
    """Cardinality knobs (defaults ≈ 1/100 of the spec per warehouse)."""

    warehouses: int = 1
    districts_per_warehouse: int = 10
    customers_per_district: int = 30
    items: int = 100
    initial_orders_per_district: int = 30
    #: fraction of the newest orders that are still undelivered (spec: last 900
    #: of 3000, i.e. 30%).
    undelivered_fraction: float = 0.3

    def __post_init__(self):
        if min(
            self.warehouses,
            self.districts_per_warehouse,
            self.customers_per_district,
            self.items,
            self.initial_orders_per_district,
        ) <= 0:
            raise ReproError("all TPC-C scale knobs must be positive")
        if not 0.0 <= self.undelivered_fraction <= 1.0:
            raise ReproError("undelivered_fraction must be in [0, 1]")
        if self.initial_orders_per_district > self.customers_per_district:
            raise ReproError(
                "initial orders per district cannot exceed customers per district "
                "(each initial order belongs to a distinct customer, spec 4.3.3.1)"
            )


@dataclass
class TPCCState:
    """Shadow state the transaction profiles read and update.

    Everything here duplicates values present in the database; keeping it
    in plain dicts lets the log generator run without querying any engine.
    """

    scale: TPCCScale
    c_constants: dict[int, int]
    #: logical clock used for entry/delivery/history dates.
    clock: int = 0
    next_o_id: dict[tuple[int, int], int] = field(default_factory=dict)
    w_ytd: dict[int, int] = field(default_factory=dict)
    d_ytd: dict[tuple[int, int], int] = field(default_factory=dict)
    stock_qty: dict[tuple[int, int], int] = field(default_factory=dict)
    stock_ytd: dict[tuple[int, int], int] = field(default_factory=dict)
    stock_order_cnt: dict[tuple[int, int], int] = field(default_factory=dict)
    stock_remote_cnt: dict[tuple[int, int], int] = field(default_factory=dict)
    customer_balance: dict[tuple[int, int, int], int] = field(default_factory=dict)
    customer_ytd_payment: dict[tuple[int, int, int], int] = field(default_factory=dict)
    customer_payment_cnt: dict[tuple[int, int, int], int] = field(default_factory=dict)
    customer_delivery_cnt: dict[tuple[int, int, int], int] = field(default_factory=dict)
    item_price: dict[int, int] = field(default_factory=dict)
    #: FIFO of undelivered order ids per (warehouse, district).
    undelivered: dict[tuple[int, int], list[int]] = field(default_factory=dict)
    #: order -> (customer, order line count, total amount in cents).
    order_info: dict[tuple[int, int, int], tuple[int, int, int]] = field(default_factory=dict)

    def tick(self) -> int:
        self.clock += 1
        return self.clock


def load_tpcc(scale: TPCCScale | None = None, seed: int = 42) -> tuple[Database, TPCCState]:
    """Populate the nine tables and the matching shadow state."""
    scale = scale or TPCCScale()
    rng = random.Random(seed)
    db = Database(tpcc_schema())
    state = TPCCState(scale=scale, c_constants=make_c_constants(rng))

    _load_items(db, state, rng)
    for w_id in range(1, scale.warehouses + 1):
        _load_warehouse(db, state, rng, w_id)
        _load_stock(db, state, rng, w_id)
        for d_id in range(1, scale.districts_per_warehouse + 1):
            _load_district(db, state, rng, w_id, d_id)
            _load_customers(db, state, rng, w_id, d_id)
            _load_orders(db, state, rng, w_id, d_id)
    return db, state


def _load_items(db: Database, state: TPCCState, rng: random.Random) -> None:
    rows = db.rows("ITEM")
    for i_id in range(1, state.scale.items + 1):
        price = random_money_cents(rng, 100, 10_000)
        state.item_price[i_id] = price
        rows.add((i_id, rng.randint(1, 10_000), random_a_string(rng, 14, 24), price))


def _load_warehouse(db: Database, state: TPCCState, rng: random.Random, w_id: int) -> None:
    ytd = 30_000_000  # spec: W_YTD = 300,000.00
    state.w_ytd[w_id] = ytd
    db.rows("WAREHOUSE").add(
        (
            w_id,
            random_a_string(rng, 6, 10),
            random_a_string(rng, 10, 20),
            random_a_string(rng, 10, 20),
            random_a_string(rng, 2, 2).upper(),
            random_n_string(rng, 4, 4) + "11111",
            rng.randint(0, 2000),  # W_TAX in basis points
            ytd,
        )
    )


def _load_stock(db: Database, state: TPCCState, rng: random.Random, w_id: int) -> None:
    rows = db.rows("STOCK")
    for i_id in range(1, state.scale.items + 1):
        quantity = rng.randint(10, 100)
        state.stock_qty[(w_id, i_id)] = quantity
        state.stock_ytd[(w_id, i_id)] = 0
        state.stock_order_cnt[(w_id, i_id)] = 0
        state.stock_remote_cnt[(w_id, i_id)] = 0
        rows.add((i_id, w_id, quantity, 0, 0, 0))


def _load_district(db: Database, state: TPCCState, rng: random.Random, w_id: int, d_id: int) -> None:
    next_o_id = state.scale.initial_orders_per_district + 1
    state.next_o_id[(w_id, d_id)] = next_o_id
    state.d_ytd[(w_id, d_id)] = 3_000_000  # spec: D_YTD = 30,000.00
    db.rows("DISTRICT").add(
        (
            w_id,
            d_id,
            random_a_string(rng, 6, 10),
            random_a_string(rng, 10, 20),
            random_a_string(rng, 10, 20),
            random_a_string(rng, 2, 2).upper(),
            random_n_string(rng, 4, 4) + "11111",
            rng.randint(0, 2000),
            3_000_000,
            next_o_id,
        )
    )


def _load_customers(db: Database, state: TPCCState, rng: random.Random, w_id: int, d_id: int) -> None:
    rows = db.rows("CUSTOMER")
    history = db.rows("HISTORY")
    for c_id in range(1, state.scale.customers_per_district + 1):
        # Spec 4.3.3.1: the first 1000 customers get the deterministic
        # syllable names, the rest NURand names; scaled, the cut is at 1/3.
        if c_id <= max(1, state.scale.customers_per_district // 3):
            last = random_last_name(c_id - 1)
        else:
            last = random_last_name(NURand(rng, 255, 0, 999, state.c_constants[255]))
        balance = -1000  # spec: C_BALANCE = -10.00
        key = (w_id, d_id, c_id)
        state.customer_balance[key] = balance
        state.customer_ytd_payment[key] = 1000
        state.customer_payment_cnt[key] = 1
        state.customer_delivery_cnt[key] = 0
        rows.add(
            (
                w_id,
                d_id,
                c_id,
                random_a_string(rng, 8, 16),
                "OE",
                last,
                "BC" if rng.random() < 0.10 else "GC",
                rng.randint(0, 5000),  # C_DISCOUNT in basis points
                balance,
                1000,
                1,
                0,
            )
        )
        history.add((c_id, d_id, w_id, d_id, w_id, state.tick(), 1000))


def _load_orders(db: Database, state: TPCCState, rng: random.Random, w_id: int, d_id: int) -> None:
    orders = db.rows("ORDERS")
    order_lines = db.rows("ORDER_LINE")
    new_orders = db.rows("NEW_ORDER")
    n_orders = state.scale.initial_orders_per_district
    first_undelivered = n_orders - int(n_orders * state.scale.undelivered_fraction) + 1
    # Spec: O_C_ID is a permutation — every initial order belongs to a
    # distinct customer.
    customer_ids = list(range(1, state.scale.customers_per_district + 1))
    rng.shuffle(customer_ids)
    state.undelivered.setdefault((w_id, d_id), [])
    for o_id in range(1, n_orders + 1):
        c_id = customer_ids[o_id - 1]
        entry_d = state.tick()
        ol_cnt = rng.randint(5, 15)
        delivered = o_id < first_undelivered
        carrier = rng.randint(1, 10) if delivered else NO_CARRIER
        orders.add((o_id, d_id, w_id, c_id, entry_d, carrier, ol_cnt, 1))
        total = 0
        for number in range(1, ol_cnt + 1):
            i_id = rng.randint(1, state.scale.items)
            amount = 0 if delivered else random_money_cents(rng, 1, 999_999)
            total += amount
            order_lines.add(
                (
                    o_id,
                    d_id,
                    w_id,
                    number,
                    i_id,
                    w_id,
                    entry_d if delivered else NOT_DELIVERED,
                    5,
                    amount,
                )
            )
        state.order_info[(w_id, d_id, o_id)] = (c_id, ol_cnt, total)
        if not delivered:
            new_orders.add((o_id, d_id, w_id))
            state.undelivered[(w_id, d_id)].append(o_id)
