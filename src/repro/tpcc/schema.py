"""The nine TPC-C tables.

Column lists follow the TPC-C specification (v5.11, clause 1.3) with a few
wide filler columns dropped — they never appear in a WHERE clause or a SET
list of any transaction profile, so omitting them changes no behaviour the
provenance evaluation observes, only the bytes-per-row constant.

Key layout notes:

* all keys are composite ``(warehouse, district, entity)`` prefixes, as in
  the spec; the transaction profiles select rows by equality on exactly
  these columns — hyperplane selections;
* money columns hold integer *cents* (the spec's values scaled by 100) so
  that rows stay exactly hashable and serialization round-trips losslessly.
"""

from __future__ import annotations

from ..db.schema import Relation, Schema

__all__ = ["TPCC_TABLES", "tpcc_schema"]

#: name -> ordered column list of the nine tables.
TPCC_TABLES: dict[str, tuple[str, ...]] = {
    "WAREHOUSE": (
        "W_ID",
        "W_NAME",
        "W_STREET_1",
        "W_CITY",
        "W_STATE",
        "W_ZIP",
        "W_TAX",
        "W_YTD",
    ),
    "DISTRICT": (
        "D_W_ID",
        "D_ID",
        "D_NAME",
        "D_STREET_1",
        "D_CITY",
        "D_STATE",
        "D_ZIP",
        "D_TAX",
        "D_YTD",
        "D_NEXT_O_ID",
    ),
    "CUSTOMER": (
        "C_W_ID",
        "C_D_ID",
        "C_ID",
        "C_FIRST",
        "C_MIDDLE",
        "C_LAST",
        "C_CREDIT",
        "C_DISCOUNT",
        "C_BALANCE",
        "C_YTD_PAYMENT",
        "C_PAYMENT_CNT",
        "C_DELIVERY_CNT",
    ),
    "HISTORY": (
        "H_C_ID",
        "H_C_D_ID",
        "H_C_W_ID",
        "H_D_ID",
        "H_W_ID",
        "H_DATE",
        "H_AMOUNT",
    ),
    "NEW_ORDER": ("NO_O_ID", "NO_D_ID", "NO_W_ID"),
    "ORDERS": (
        "O_ID",
        "O_D_ID",
        "O_W_ID",
        "O_C_ID",
        "O_ENTRY_D",
        "O_CARRIER_ID",
        "O_OL_CNT",
        "O_ALL_LOCAL",
    ),
    "ORDER_LINE": (
        "OL_O_ID",
        "OL_D_ID",
        "OL_W_ID",
        "OL_NUMBER",
        "OL_I_ID",
        "OL_SUPPLY_W_ID",
        "OL_DELIVERY_D",
        "OL_QUANTITY",
        "OL_AMOUNT",
    ),
    "ITEM": ("I_ID", "I_IM_ID", "I_NAME", "I_PRICE"),
    "STOCK": (
        "S_I_ID",
        "S_W_ID",
        "S_QUANTITY",
        "S_YTD",
        "S_ORDER_CNT",
        "S_REMOTE_CNT",
    ),
}


def tpcc_schema() -> Schema:
    """A fresh :class:`~repro.db.schema.Schema` with the nine tables."""
    return Schema(Relation(name, columns) for name, columns in TPCC_TABLES.items())
