"""The concurrent provenance service: one writer, snapshot-isolated readers.

A :class:`ProvenanceService` wraps exactly one backend engine — a plain
:class:`~repro.engine.engine.Engine`, a durable
:class:`~repro.wal.engine.JournaledEngine`, or a
:class:`~repro.shard.engine.ShardedEngine` — behind an **admission
queue**.  All engine access is confined to a single writer running on a
dedicated one-thread executor:

* ``apply`` requests are admitted in arrival order; each writer cycle
  pops every pending request (up to ``admission_max``) and **fuses
  contiguous apply admissions into one** :meth:`Engine.apply_batch` call.
  ``apply_batch`` is semantically identical to sequential application by
  construction, so fusion changes throughput, never results.  With
  ``admission_max=1`` the service degrades to per-call dispatch — the
  baseline ``server_comparison`` measures against.
* provenance reads never touch the engine.  They are answered from
  **versioned immutable snapshots**: row-keyed
  :meth:`~repro.store.annotation_store.AnnotationStore.state`-style
  captures published by the writer at quiescent points (between admitted
  groups, never inside one).  A reader that finds the published snapshot
  stale enqueues one coalesced ``capture`` admission and awaits it; any
  number of readers then share the same immutable capture, so readers
  never block the writer and never observe a half-applied batch.

The engine, the expression intern table and the rewrite memos are only
ever *written* by the writer thread; snapshots cross to reader tasks as
frozen objects.  (Client-side decoding may intern concurrently — interning
is atomic, see ``repro.core.expr._intern``.)
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping

from ..core.expr import (
    Expr,
    intern_sweep_stats,
    intern_table_size,
    register_expr_roots,
    set_intern_gc,
    sweep_intern_table,
)
from ..db.database import Database
from ..engine.engine import Engine
from ..errors import EngineError, ServerError
from ..queries.pattern import Pattern
from ..queries.updates import Transaction, UpdateQuery
from ..shard.codec import capture_engine
from ..shard.engine import ShardedEngine
from ..views import (
    DeltaBuffer,
    StandingView,
    ViewRegistry,
    attach_delta_sink,
    delta_capable,
    flush_pending,
    local_engines,
)
from ..wal.checkpoint import DEFAULT_EVERY_RECORDS, CheckpointManager
from ..wal.engine import JournaledEngine

__all__ = ["ProvenanceService", "ServerConfig", "Snapshot", "build_engine"]


@dataclass
class ServerConfig:
    """Deployment shape of one provenance service."""

    host: str = "127.0.0.1"
    port: int = 0  #: 0 = ephemeral (the bound port is reported back)
    #: ``plain`` (in-memory Engine), ``journaled`` (WAL + checkpoints in
    #: ``directory``), or ``sharded`` (hash-partitioned; durable when
    #: ``directory`` is set).
    backend: str = "plain"
    policy: str = "normal_form_batch"
    directory: str | None = None
    shards: int = 4
    parallel_shards: bool = False
    shard_keys: Mapping[str, int | str] | None = None
    sync: str = "flush"
    checkpoint_every: int = DEFAULT_EVERY_RECORDS
    #: Most apply admissions fused into one writer cycle; 1 = per-call
    #: dispatch (each request pays its own executor handoff).
    admission_max: int = 256
    #: Writer cycles between intern-table sweeps; 0 = grow-only interning
    #: (the historical behaviour).  Sweeps run on the writer thread at the
    #: end of a cycle — a quiescent point by construction.
    sweep_every: int = 0
    #: Keep annotations arena-encoded at rest (plain backend only).
    arena: bool = False
    #: Most frames a subscribed connection may have queued for it before
    #: the server drops its subscriptions (slow-consumer policy: the
    #: client is told it lagged and must re-subscribe; see
    #: ``docs/OPERATIONS.md``).
    push_backlog: int = 1024


@dataclass(frozen=True)
class Snapshot:
    """One immutable published observation of the engine.

    ``state`` is the row-keyed ``{relation: {row: (expression, live)}}``
    capture (``None`` expressions under the provenance-free policy) taken
    at a quiescent point; ``version`` counts the apply admissions folded
    in, so two snapshots with equal versions hold identical state.
    """

    version: int
    state: Mapping[str, Mapping[tuple, tuple["Expr | None", bool]]]
    stats: Mapping[str, float | int]


@dataclass
class ServiceCounters:
    """Admission accounting (server-side half of the ``stats`` op)."""

    admitted: int = 0  #: apply requests admitted and applied
    writer_cycles: int = 0  #: executor handoffs the writer paid
    fused_runs: int = 0  #: cycles that fused >= 2 apply admissions
    max_admitted: int = 0  #: largest fusion achieved by one cycle
    captures: int = 0  #: snapshots captured and published
    apply_errors: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "admitted": self.admitted,
            "writer_cycles": self.writer_cycles,
            "fused_runs": self.fused_runs,
            "max_admitted": self.max_admitted,
            "captures": self.captures,
            "apply_errors": self.apply_errors,
        }


def build_engine(database: Database | None, config: ServerConfig):
    """Construct (or recover) the backend engine a config describes.

    An existing durable directory wins over ``database``: ``journaled``
    resumes via :func:`repro.wal.recovery.recover` when ``directory``
    already holds a checkpoint, and ``sharded`` resumes via
    :func:`repro.shard.recovery.recover_sharded` when it holds a
    ``shards.json`` manifest — so restarting ``repro serve DIR`` after a
    crash is itself the recovery procedure.
    """
    if config.arena and config.backend != "plain":
        raise ServerError("arena at-rest encoding is only supported by backend 'plain'")
    if config.sweep_every and config.policy.startswith("mv_"):
        raise ServerError(
            f"--sweep-every is unsupported for policy {config.policy!r}: MV "
            "annotations live outside the expression intern table, so a "
            "sweep would reclaim nothing (drop the flag)"
        )
    if config.backend == "plain":
        if database is None:
            raise ServerError("backend 'plain' needs an initial database")
        return Engine(database, policy=config.policy, arena=config.arena)
    if config.backend == "journaled":
        if config.directory is None:
            raise ServerError("backend 'journaled' needs a durable directory")
        if CheckpointManager(config.directory).has_checkpoint():
            from ..wal.recovery import recover

            return recover(
                config.directory,
                sync=config.sync,
                checkpoint_every=config.checkpoint_every,
            )
        if database is None:
            raise ServerError(
                f"{config.directory} holds no checkpoint; a fresh journaled "
                "server needs an initial database"
            )
        return JournaledEngine(
            database,
            config.directory,
            policy=config.policy,
            sync=config.sync,
            checkpoint_every=config.checkpoint_every,
        )
    if config.backend == "sharded":
        from ..shard.recovery import is_sharded_directory, recover_sharded

        if config.directory is not None and is_sharded_directory(config.directory):
            return recover_sharded(
                config.directory,
                parallel=config.parallel_shards,
                sync=config.sync,
                checkpoint_every=config.checkpoint_every,
                sweep_every=config.sweep_every,
            )
        if database is None:
            raise ServerError("backend 'sharded' needs an initial database")
        return ShardedEngine(
            database,
            n_shards=config.shards,
            policy=config.policy,
            shard_keys=config.shard_keys,
            parallel=config.parallel_shards,
            journal_dir=config.directory,
            sync=config.sync,
            checkpoint_every=config.checkpoint_every,
            sweep_every=config.sweep_every,
        )
    raise ServerError(
        f"unknown backend {config.backend!r} (known: plain, journaled, sharded)"
    )


@dataclass
class _Admission:
    """One queue entry awaiting the writer."""

    kind: str  #: apply | capture | stats | checkpoint | close
    future: asyncio.Future
    items: list = field(default_factory=list)
    batch: bool = False
    n_queries: int = 0
    checkpoint: bool = True


class ProvenanceService:
    """The single-writer service core (transport-free; see ``server.py``)."""

    def __init__(self, engine, config: ServerConfig | None = None):
        self.engine = engine
        self.config = config or ServerConfig()
        if self.config.admission_max < 1:
            raise ServerError("admission_max must be >= 1")
        self.counters = ServiceCounters()
        #: ``primary`` serves writes; ``follower`` rejects them and folds
        #: shipped journal frames in through ``replicate`` admissions
        #: instead (see :mod:`repro.replication.node`).
        self.role = "primary"
        #: Follower-only: the :class:`ShipmentApplier` the ``replicate``
        #: admission feeds (owns the journal the engine detached).
        self.applier = None
        #: Follower-only hooks installed by the node: ``promoter()`` runs
        #: the whole promotion (stop the stream, then the ``promote``
        #: admission); ``replication()`` reports stream health for stats.
        self.promoter = None
        self.replication = None
        self.schema = getattr(engine, "schema", None) or engine.executor.schema
        self._queue: asyncio.Queue[_Admission] = asyncio.Queue()
        self._version = 0
        self._snapshot: Snapshot | None = None
        self._last_sweep: dict | None = None
        if self.config.sweep_every < 0:
            raise ServerError("sweep_every must be >= 0")
        if self.config.sweep_every:
            # Before the writer thread (or any client decode) can intern:
            # the nursery must cover every node created from here on.
            # (Shard *workers* enable GC in their own processes — see
            # ``shard.worker``; this switch governs the server process.)
            set_intern_gc(True)
            # The engine registers its own roots (the store for plain
            # engines, the executor-tracking provider for JournaledEngine,
            # the capture cache for ShardedEngine); the published snapshot
            # is the other root set readers may still be holding.
            register_expr_roots(self)
        #: Standing views, maintained by the writer from drained deltas.
        self.views = ViewRegistry()
        self._delta_buffer: DeltaBuffer | None = None
        #: Server push hook: called on the *writer thread* after every
        #: delta flush with ``(batch, {view_id: [matched deltas]})``.  The
        #: transport bridges this to its event loop (see ``server.py``).
        self.on_deltas = None
        self._pending_capture: asyncio.Future | None = None
        self._closing = False
        self._closed = False
        # ONE worker thread: every engine/intern-table write happens here.
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-writer"
        )
        self._writer_task: asyncio.Task | None = None

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        """Start the writer task on the running event loop."""
        if self._writer_task is None:
            self._writer_task = asyncio.get_running_loop().create_task(self._writer())

    async def close(self, checkpoint: bool = True) -> None:
        """Drain the queue, flush/checkpoint the backend, stop the writer.

        Every admission enqueued before the close barrier is still served;
        later ones are rejected with :class:`ServerError`.  ``checkpoint``
        mirrors :meth:`JournaledEngine.close` — pass ``False`` to leave
        journal tails for recovery (a simulated crash).
        """
        if self._closed:
            return
        if self._closing:
            if self._writer_task is not None:
                await asyncio.shield(self._writer_task)
            return
        self._closing = True
        loop = asyncio.get_running_loop()
        if self._writer_task is not None and self._writer_task.done():
            # The writer died on an internal error; a queued close barrier
            # would never be served, so close the engine directly (still on
            # the dedicated worker thread).
            try:
                await loop.run_in_executor(
                    self._executor, self._close_engine, checkpoint
                )
            finally:
                self._closed = True
                self._executor.shutdown(wait=True)
            return
        future = loop.create_future()
        await self._queue.put(_Admission("close", future, checkpoint=checkpoint))
        try:
            await future
        finally:
            if self._writer_task is not None:
                await self._writer_task
            self._closed = True
            self._executor.shutdown(wait=True)

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def version(self) -> int:
        """Apply admissions folded into the engine so far."""
        return self._version

    # -- admission (reader/connection side) ------------------------------------

    def _check_open(self) -> None:
        if self._closing or self._closed:
            raise ServerError("provenance service is shut down")
        if self._writer_task is None:
            raise ServerError("provenance service is not started")
        if self._writer_task.done():
            raise ServerError("provenance service writer failed; restart the server")

    async def apply(self, items: Iterable[UpdateQuery | Transaction], batch: bool = False) -> dict:
        """Admit a decoded item sequence; resolves once applied."""
        self._check_open()
        if self.role == "follower":
            raise ServerError(
                "this server is a read-only follower; route writes to the "
                "primary (or promote this follower first)"
            )
        items = list(items)
        n_queries = sum(
            len(item) if isinstance(item, Transaction) else 1 for item in items
        )
        future = asyncio.get_running_loop().create_future()
        await self._queue.put(
            _Admission("apply", future, items=items, batch=batch, n_queries=n_queries)
        )
        return await future

    async def snapshot(self) -> Snapshot:
        """The newest published snapshot, capturing one if stale.

        Concurrent stale readers coalesce onto a single ``capture``
        admission; the writer serves it at the next quiescent point.
        """
        snap = self._snapshot
        if snap is not None and snap.version == self._version:
            return snap
        self._check_open()
        pending = self._pending_capture
        if pending is None or pending.done():
            pending = asyncio.get_running_loop().create_future()
            self._pending_capture = pending
            await self._queue.put(_Admission("capture", pending))
        # shield: one cancelled reader must not cancel the shared capture.
        return await asyncio.shield(pending)

    def expr_roots(self):
        """Live-expression roots of the published snapshot (sweep root set).

        Readers may still hold the last published snapshot, so its
        expressions must survive a sweep even after the engine's own
        store has moved past them.  Standing-view answer sets are rooted
        for the same reason (they coincide with store expressions right
        after a flush, but the invariant should not depend on that).
        """
        snapshot = self._snapshot
        if snapshot is not None:
            for rows in snapshot.state.values():
                for ann, _live in rows.values():
                    if ann is not None:
                        yield ann
        for view in self.views.views():
            for ann, _live in view.rows.values():
                if ann is not None:
                    yield ann

    def memory_stats(self) -> dict:
        """The ``memory`` block of the ``stats`` op."""
        from ..memory import current_rss_bytes, peak_rss_bytes

        store = getattr(getattr(self.engine, "executor", None), "store", None)
        arena = getattr(store, "arena", None) if store is not None else None
        return {
            "rss_bytes": current_rss_bytes(),
            "peak_rss_bytes": peak_rss_bytes(),
            "intern_table_size": intern_table_size(),
            "sweep_every": self.config.sweep_every,
            "sweep": intern_sweep_stats(),
            "last_sweep": self._last_sweep,
            "arena_nodes": arena.node_count if arena is not None else 0,
            "arena_bytes": arena.nbytes() if arena is not None else 0,
        }

    async def stats(self) -> dict:
        """Engine counters observed at a quiescent point, plus admission counters."""
        self._check_open()
        future = asyncio.get_running_loop().create_future()
        await self._queue.put(_Admission("stats", future))
        engine_stats = await future
        return {
            "engine": engine_stats,
            "server": {
                **self.counters.as_dict(),
                "version": self._version,
                "backend": self.config.backend,
                "policy": getattr(self.engine, "policy", None),
                "admission_max": self.config.admission_max,
                "role": self.role,
            },
            "memory": self.memory_stats(),
            **(
                {"replication": self.replication()}
                if self.replication is not None
                else {}
            ),
        }

    async def checkpoint(self) -> int:
        """Force a durability checkpoint; returns checkpoints written."""
        self._check_open()
        future = asyncio.get_running_loop().create_future()
        await self._queue.put(_Admission("checkpoint", future))
        return await future

    async def replicate(self, shipments: list) -> dict:
        """Fold shipped journal frames in (follower role only).

        ``shipments`` is the ``[(record, line), ...]`` batch the stream
        receiver assembled; applying it on the writer thread serializes
        replication with reads, so readers see whole shipped batches and
        the published snapshot's version *is* the applied journal seq.
        """
        self._check_open()
        if self.applier is None:
            raise ServerError("this server is not a replication follower")
        future = asyncio.get_running_loop().create_future()
        await self._queue.put(_Admission("replicate", future, items=shipments))
        return await future

    async def promote(self) -> dict:
        """Turn this follower into a writer (after its stream stopped).

        Reattaches the journal to the engine on the writer thread, so the
        role flip is atomic with respect to every admission: applies
        admitted before it are rejected as read-only, applies after it
        journal normally, continuing the shipped sequence.
        """
        self._check_open()
        if self.applier is None:
            raise ServerError("this server is not a replication follower")
        future = asyncio.get_running_loop().create_future()
        await self._queue.put(_Admission("promote", future))
        return await future

    async def subscribe(
        self, relation: str, pattern: Pattern
    ) -> tuple[StandingView, dict, int]:
        """Register a standing view; resolves to ``(view, seed, version)``.

        Served by the writer at a quiescent point: registration happens
        between admitted groups, so the seed is a consistent slice at a
        definite version and no delta is ever missed or double-counted.
        ``seed`` is a *detached copy* of the seeded answer set — the live
        ``view.rows`` belongs to the writer thread and keeps advancing, so
        transports must encode the copy, never the view.
        """
        self._check_open()
        future = asyncio.get_running_loop().create_future()
        await self._queue.put(
            _Admission("subscribe", future, items=[(str(relation), pattern)])
        )
        return await future

    async def unsubscribe(self, view_id: int) -> bool:
        """Drop a standing view; resolves to whether it existed."""
        self._check_open()
        future = asyncio.get_running_loop().create_future()
        await self._queue.put(_Admission("unsubscribe", future, items=[int(view_id)]))
        return await future

    def tuple_vars(self) -> dict[str, dict[tuple, str]]:
        """Initial-tuple annotation names (static after construction)."""
        if isinstance(self.engine, ShardedEngine):
            return self.engine._tuple_vars
        return getattr(self.engine.executor, "_tuple_vars", {})

    # -- the writer ------------------------------------------------------------

    async def _writer(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            entry = await self._queue.get()
            batch = [entry]
            while len(batch) < self.config.admission_max:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            try:
                outcomes, stop = await loop.run_in_executor(
                    self._executor, self._process, batch
                )
            except BaseException as exc:  # noqa: BLE001 - writer must not die silently
                for item in batch:
                    if not item.future.done():
                        item.future.set_exception(
                            ServerError(f"writer failed: {exc}")
                        )
                raise
            for future, outcome in outcomes:
                if future.done():
                    continue
                if isinstance(outcome, BaseException):
                    future.set_exception(outcome)
                else:
                    future.set_result(outcome)
            if stop:
                return

    def _process(self, batch: list[_Admission]) -> tuple[list, bool]:
        """Run one writer cycle on the worker thread.  Single engine toucher."""
        outcomes: list[tuple[asyncio.Future, object]] = []
        self.counters.writer_cycles += 1
        index = 0
        while index < len(batch):
            entry = batch[index]
            if entry.kind == "apply":
                group = [entry]
                while (
                    index + len(group) < len(batch)
                    and batch[index + len(group)].kind == "apply"
                ):
                    group.append(batch[index + len(group)])
                index += len(group)
                self._apply_group(group, outcomes)
            elif entry.kind == "capture":
                index += 1
                outcomes.append((entry.future, self._outcome_of(self._capture)))
            elif entry.kind == "stats":
                index += 1
                outcomes.append(
                    (entry.future, self._outcome_of(self.engine.stats.snapshot))
                )
            elif entry.kind == "checkpoint":
                index += 1
                outcomes.append((entry.future, self._outcome_of(self._checkpoint_now)))
            elif entry.kind == "replicate":
                index += 1
                shipments = entry.items
                outcomes.append(
                    (entry.future, self._outcome_of(lambda: self._replicate(shipments)))
                )
            elif entry.kind == "promote":
                index += 1
                outcomes.append((entry.future, self._outcome_of(self._promote)))
            elif entry.kind == "subscribe":
                index += 1
                relation, pattern = entry.items[0]
                outcomes.append(
                    (
                        entry.future,
                        self._outcome_of(lambda: self._register_view(relation, pattern)),
                    )
                )
            elif entry.kind == "unsubscribe":
                index += 1
                view_id = entry.items[0]
                outcomes.append(
                    (
                        entry.future,
                        self._outcome_of(lambda: self.views.unregister(view_id)),
                    )
                )
            elif entry.kind == "close":
                # Anything admitted after the close barrier is rejected.
                for late in batch[index + 1 :]:
                    outcomes.append(
                        (late.future, ServerError("provenance service is shut down"))
                    )
                try:
                    self._close_engine(entry.checkpoint)
                except Exception as exc:  # noqa: BLE001 - shipped to the closer
                    outcomes.append((entry.future, ServerError(f"close failed: {exc}")))
                else:
                    outcomes.append((entry.future, True))
                return outcomes, True
            else:  # pragma: no cover - admission kinds are internal
                index += 1
                outcomes.append(
                    (entry.future, ServerError(f"unknown admission {entry.kind!r}"))
                )
        # End of cycle on the writer thread — the same quiescent point that
        # publishes snapshots: drain accumulated row deltas, advance the
        # standing views, and hand matched deltas to the push transport.
        self._flush_deltas()
        every = self.config.sweep_every
        if every and self.counters.writer_cycles % every == 0:
            # End of cycle on the writer thread: no admission is in flight,
            # so this is the quiescent point the sweep contract requires.
            self._last_sweep = sweep_intern_table().as_dict()
            store = getattr(getattr(self.engine, "executor", None), "store", None)
            if store is not None and getattr(store, "arena", None) is not None:
                store.compact_arena()
        return outcomes, False

    @staticmethod
    def _outcome_of(operation):
        """Run one admission's work; a failure is that admission's outcome.

        The writer task must survive any single request's failure — an
        exception escaping :meth:`_process` would kill the writer and
        deadlock every later admission (including close).
        """
        try:
            return operation()
        except Exception as exc:  # noqa: BLE001 - shipped to the one requester
            return exc

    def _apply_group(self, group: list[_Admission], outcomes: list) -> None:
        """Apply one fused run of contiguous apply admissions."""
        items = [item for entry in group for item in entry.items]
        try:
            if len(group) > 1 or group[0].batch:
                # Fusion is always legal: apply_batch is semantically
                # identical to sequential apply, whatever each request asked.
                self.engine.apply_batch(items)
            else:
                self.engine.apply(items)
        except Exception as exc:  # noqa: BLE001 - shipped to every admitted client
            # The engine holds the applied prefix of the fused run (exactly
            # the in-process apply_batch contract); the whole group shares
            # the failure because per-request attribution does not exist
            # inside one fused call.
            self._version += len(group)
            self.counters.apply_errors += len(group)
            error = ServerError(
                f"apply failed mid-group ({len(group)} fused requests; the "
                f"applied prefix persists): {exc}"
            )
            for entry in group:
                outcomes.append((entry.future, error))
            return
        self._version += len(group)
        self.counters.admitted += len(group)
        if len(group) > 1:
            self.counters.fused_runs += 1
        self.counters.max_admitted = max(self.counters.max_admitted, len(group))
        outcome = {"applied": 0, "version": self._version}
        journal = getattr(self.engine, "journal", None)
        if journal is not None:
            # The durable sequence this group reached: what a replication
            # client compares follower versions against (staleness bound).
            outcome["seq"] = journal.last_seq
        for entry in group:
            outcomes.append(
                (entry.future, {**outcome, "applied": entry.n_queries})
            )

    # -- replication (writer thread only) ---------------------------------------

    def _replicate(self, shipments: list) -> dict:
        """Apply one shipped batch; the follower's version is its seq."""
        applied = self.applier.apply_lines(shipments)
        self._version = self.applier.applied_seq
        self.counters.admitted += applied
        return {"applied": applied, "seq": self.applier.applied_seq}

    def _promote(self) -> dict:
        """Reattach the journal and flip the role (writer thread)."""
        self.applier.promote()
        self.role = "primary"
        return {"role": "primary", "seq": self.engine.journal.last_seq}

    # -- live views (writer thread only) ---------------------------------------

    def _register_view(
        self, relation: str, pattern: Pattern
    ) -> tuple[StandingView, dict, int]:
        """Attach the delta sink on first use, then register + seed a view."""
        if relation not in self.schema.names:
            raise ServerError(f"unknown relation {relation!r}")
        if self._delta_buffer is None:
            if not delta_capable(self.engine):
                raise ServerError(
                    "this backend cannot maintain live views: executors must "
                    "emit row deltas in-process (unsupported: process-pool "
                    "sharding and the MV policies)"
                )
            buffer = DeltaBuffer()
            attach_delta_sink(self.engine, buffer)
            self._delta_buffer = buffer
        view = self.views.register(relation, pattern)
        self._seed_view(view)
        return view, view.state(), view.version

    def _seed_view(self, view: StandingView) -> None:
        """Seed through the store's pattern planner — O(matched), not O(relation).

        Pending deferred work flushes first so the seed shows normalized
        annotations (exactly what a capture at this version would show);
        shard stores hold disjoint rows, so merging their matches is a
        plain union.
        """
        flush_pending(self.engine)
        rows: dict[tuple, tuple] = {}
        for engine in local_engines(self.engine):
            executor = engine.executor
            relation_store = executor.store.relation(view.relation)
            slots = relation_store.rows
            for rid, row in relation_store.matching(view.pattern):
                ann = slots.annotation(rid)
                rows[row] = (
                    None if ann is None else executor._expr_of(ann),
                    slots.is_live(rid),
                )
        view.rows = rows
        view.version = self._version

    def _flush_deltas(self) -> None:
        """Drain the delta buffer into a version-stamped batch and fan out."""
        buffer = self._delta_buffer
        if buffer is None:
            return
        # The deferred-normalization flush emits its annotation rewrites
        # *into this batch*, so every batch reflects exactly the state a
        # same-version capture observes.
        flush_pending(self.engine)
        if not buffer:
            return
        batch = buffer.drain(self._version)
        per_view = self.views.apply(batch)
        callback = self.on_deltas
        if callback is not None:
            callback(batch, per_view)

    def _capture(self) -> Snapshot:
        """Capture and publish a snapshot (writer thread, quiescent point)."""
        if isinstance(self.engine, ShardedEngine):
            state = self.engine.state()
        else:
            state = capture_engine(self.engine)
        snapshot = Snapshot(
            version=self._version, state=state, stats=self.engine.stats.snapshot()
        )
        self._snapshot = snapshot
        self.counters.captures += 1
        return snapshot

    def _checkpoint_now(self) -> int:
        if isinstance(self.engine, ShardedEngine):
            if not self.engine.journaled:
                raise EngineError("sharded backend is not journaled; pass directory=")
            return int(self.engine.checkpoint())
        if isinstance(self.engine, JournaledEngine):
            if self.engine.journal is None:
                # Follower: the applier owns the journal and checkpoints
                # only at shipped flush boundaries — a forced checkpoint
                # here could observe provenance mid-transaction and flush
                # the normal_form_batch policy at a point the primary
                # never did.
                raise EngineError(
                    "followers checkpoint from the shipped stream; force "
                    "checkpoints on the primary"
                )
            return int(self.engine.checkpoint())
        raise EngineError("backend 'plain' keeps no durable state to checkpoint")

    def _close_engine(self, checkpoint: bool) -> None:
        """Graceful shutdown: flush pending normalization, then close.

        * sharded — drain buffered runs, checkpoint journaled shards, stop
          workers (:meth:`ShardedEngine.close`);
        * journaled — force a final checkpoint so the next start recovers
          instantly from a clean directory (:meth:`JournaledEngine.close`);
        * plain — one observation flush, so the ``normal_form_batch``
          policy's deferred normalization is not silently dropped work.
        """
        engine = self.engine
        if isinstance(engine, ShardedEngine):
            engine.close(checkpoint=checkpoint and engine.journaled)
        elif isinstance(engine, JournaledEngine):
            if engine.journal is None and self.applier is not None:
                # Follower: no forced checkpoint (the stream may be
                # mid-transaction); the journal tail replays on the next
                # bootstrap exactly as after a crash.
                self.applier.close()
            else:
                engine.close(checkpoint=checkpoint)
        else:
            engine.support_count()

    @property
    def directory(self) -> Path | None:
        return Path(self.config.directory) if self.config.directory else None
