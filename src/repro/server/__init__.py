"""The concurrent provenance service (PR 5).

A long-lived network surface over the update engine: an asyncio TCP
server speaking a length-prefixed JSON protocol, a single-writer
admission queue with automatic run fusion, snapshot-isolated provenance
readers, and a blocking client.  See ``docs/ARCHITECTURE.md`` (server
section) and ``docs/OPERATIONS.md`` for deployment semantics.
"""

from .client import ServerClient
from .protocol import DEFAULT_PORT, MAX_FRAME, encode_frame, read_frame, recv_frame, send_frame
from .server import ProvenanceServer, ServerHandle, serve_in_thread
from .service import ProvenanceService, ServerConfig, Snapshot, build_engine

__all__ = [
    "DEFAULT_PORT",
    "MAX_FRAME",
    "ProvenanceServer",
    "ProvenanceService",
    "ServerClient",
    "ServerConfig",
    "ServerHandle",
    "Snapshot",
    "build_engine",
    "encode_frame",
    "read_frame",
    "recv_frame",
    "send_frame",
    "serve_in_thread",
]
