"""The asyncio TCP transport of the provenance service.

:class:`ProvenanceServer` accepts connections, reads request frames, and
dispatches them against a :class:`~repro.server.service.ProvenanceService`.
Each connection is served by one task and answered strictly in order;
concurrency comes from many connections, whose ``apply`` admissions the
service's writer fuses and whose reads share published snapshots.

The event loop never touches the engine and never interns expressions:
request decoding stops at queries/patterns (plain data), and responses
encode expressions *from* immutable snapshots (``expr_to_dict`` creates
no nodes).  Every engine mutation stays on the service's writer thread.

Live-view pushes ride the same per-connection ordered queue the
responses do: the writer's delta flush hands matched deltas to
:meth:`ProvenanceServer._bridge_deltas` (the service's ``on_deltas``
hook), which hops onto the event loop and enqueues pre-encoded
``"frame": "delta"`` payloads into each subscribed connection's pending
queue.  The single responder therefore interleaves pushed frames
*between* pipelined responses without reordering either stream.  A
subscriber whose queue exceeds ``ServerConfig.push_backlog`` is dropped
(slow-consumer policy): its subscriptions are torn down and one final
``lagged`` notice tells it to re-subscribe for a fresh seed.

:func:`serve_in_thread` runs a whole server on a background thread —
what the benchmarks, the stress tests and the example use to host a
server and its clients in one process.
"""

from __future__ import annotations

import asyncio
import threading
import time
from typing import Iterable

from .._version import __version__
from ..core.expr import evaluate
from ..db.database import Database
from ..errors import ReproError, ServerError
from ..queries.pattern import Pattern
from ..queries.updates import Insert, Transaction, UpdateQuery
from ..semantics.boolean import BooleanStructure
from ..shard.codec import decode_events, encode_capture, encode_tuple_vars
from ..storage.exprjson import expr_to_dict
from ..views import DeltaBatch, encode_delta_batch
from ..workloads.logs import log_from_events, pattern_from_dict, pattern_to_dict
from .protocol import (
    FRAME_DELTA,
    PROTOCOL_REVISION,
    encode_frame,
    error_payload,
    read_frame,
)
from .service import ProvenanceService, ServerConfig, build_engine

__all__ = ["ProvenanceServer", "ServerHandle", "serve_in_thread"]


async def _const(payload: dict, closing: bool) -> tuple[dict, bool]:
    """A pre-computed dispatch result (framing errors)."""
    return payload, closing


class _Connection:
    """Per-connection transport state.

    Shared by the frame reader, the dispatch tasks and the push fanout —
    all of which run on the event loop, so no locking.  ``pending`` holds
    dispatch tasks (responses, drained in arrival order) and plain dicts
    (server-pushed frames, already encodable); ``subscriptions`` is this
    connection's live view ids.
    """

    __slots__ = ("pending", "subscriptions")

    def __init__(self, pending: "asyncio.Queue") -> None:
        self.pending = pending
        self.subscriptions: set[int] = set()


class ProvenanceServer:
    """One TCP endpoint over one :class:`ProvenanceService`."""

    def __init__(self, service: ProvenanceService, host: str | None = None, port: int | None = None):
        self.service = service
        self.host = host if host is not None else service.config.host
        self.port = port if port is not None else service.config.port
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.StreamWriter] = set()
        self._stopped = asyncio.Event()
        self._stopping = False
        self._stop_task: asyncio.Task | None = None
        self._shutdown_checkpoint = True
        self._loop: asyncio.AbstractEventLoop | None = None
        #: view id -> subscribed connection (event-loop state only).
        self._subscriptions: dict[int, _Connection] = {}
        #: Pushes that arrived for a view whose subscribe dispatch has not
        #: registered its connection yet (the writer resolves the subscribe
        #: admission and flushes deltas in the same cycle, and the flush
        #: callback can reach the loop before the awaiting task resumes).
        #: Drained into the connection right after its seed response.
        self._early_pushes: dict[int, list[dict]] = {}
        #: Strong refs to background unsubscribe tasks (the loop keeps
        #: only weak ones, and a GC'd task would leak registry views).
        self._cleanup_tasks: set[asyncio.Task] = set()

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> None:
        """Bind, start the writer, begin accepting connections."""
        self._loop = asyncio.get_running_loop()
        self.service.on_deltas = self._bridge_deltas
        self.service.start()
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]

    async def wait_stopped(self) -> None:
        await self._stopped.wait()

    async def stop(self, checkpoint: bool = True) -> None:
        """Graceful shutdown: stop accepting, drain admissions, close backend."""
        if self._stopping:
            await self._stopped.wait()
            return
        self._stopping = True
        # Quiet the push path first: the final writer drain may still
        # flush deltas, but there is no one left to deliver them to.
        self.service.on_deltas = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.service.close(checkpoint=checkpoint)
        for writer in list(self._connections):
            writer.close()
        self._stopped.set()

    # -- connection handling ---------------------------------------------------

    #: In-flight pipelined requests one connection may hold.  Bounds the
    #: dispatch tasks (and decoded payloads) a single peer can pin in
    #: memory; deep enough that admission fusion saturates long before it.
    MAX_PIPELINE = 1024

    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        """Serve one connection: pipelined dispatch, strictly ordered replies.

        Each request is dispatched on its own task *as soon as its frame
        arrives*, so a client that pipelines N apply frames lands N
        admissions in the service queue back-to-back — the depth the
        writer's run fusion feeds on.  A single responder drains the
        dispatch tasks in arrival order, so replies stay positional.
        Admission order equals frame order because tasks are scheduled
        FIFO and admission is their first suspension point.
        """
        self._connections.add(writer)
        loop = asyncio.get_running_loop()
        pending: asyncio.Queue[asyncio.Task | dict | None] = asyncio.Queue()
        conn = _Connection(pending)
        in_flight = asyncio.Semaphore(self.MAX_PIPELINE)
        responder = loop.create_task(self._respond(writer, pending))
        try:
            while not responder.done():
                try:
                    request = await read_frame(reader)
                except (asyncio.IncompleteReadError, ConnectionError, OSError):
                    break  # peer hung up (or stop() closed the transport)
                except ServerError as exc:
                    # Framing is broken: answer once, then hang up — the
                    # stream position can no longer be trusted.
                    await pending.put(loop.create_task(_const(error_payload(exc), False)))
                    break
                await in_flight.acquire()
                task = loop.create_task(self._dispatch(request, conn))
                task.add_done_callback(lambda _t: in_flight.release())
                await pending.put(task)
        finally:
            self._drop_subscriptions(conn, lagged=False)
            await pending.put(None)  # EOF marker for the responder
            try:
                await responder
            finally:
                self._connections.discard(writer)
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        pending: "asyncio.Queue[asyncio.Task | dict | None]",
    ) -> None:
        """Write responses in arrival order; returns on EOF/hang-up/shutdown."""
        while True:
            task = await pending.get()
            if task is None:
                return
            if isinstance(task, dict):
                # A server-pushed frame, already a complete payload: it
                # slots between responses, never inside one, because both
                # streams share this single ordered queue.
                response, closing = task, False
            else:
                response, closing = await task
            try:
                frame = encode_frame(response)
            except ServerError as exc:
                # A response that cannot serialize (non-JSON state values,
                # a capture bigger than MAX_FRAME) must still answer its
                # request — error_payload always encodes.
                frame = encode_frame(error_payload(exc))
            try:
                writer.write(frame)
                # Flush only at pipeline gaps: with more responses already
                # waiting, the transport buffer coalesces them into fewer
                # writes (drain still fires on every gap and before close,
                # so no response is ever left unflushed).
                if pending.empty() or closing:
                    await writer.drain()
                write_failed = False
            except (ConnectionError, OSError):
                write_failed = True  # peer is gone; an accepted shutdown still runs
            if closing:
                # Reply is flushed first: the requester learns its shutdown
                # was accepted, then the server drains, flushes, checkpoints
                # and exits.  stop() closes every connection, which unblocks
                # this handler's reader.  The task reference is held on the
                # server — the loop only keeps a weak one, and a GC'd stop
                # task would skip the final checkpoint.
                self._stop_task = asyncio.get_running_loop().create_task(
                    self.stop(checkpoint=self._shutdown_checkpoint)
                )
                return
            if write_failed:
                return

    async def _dispatch(self, request: dict, conn: _Connection) -> tuple[dict, bool]:
        """Route one request; returns ``(response, close-after-reply)``."""
        op = request.get("op")
        handler = _OPS.get(op)
        if handler is None:
            known = ", ".join(sorted(_OPS))
            return error_payload(ServerError(f"unknown op {op!r} (known: {known})")), False
        try:
            response = await handler(self, request, conn)
        except asyncio.CancelledError:
            raise
        except ReproError as exc:
            return error_payload(exc), False
        except Exception as exc:  # noqa: BLE001 - a bug must not kill the connection
            return error_payload(ServerError(f"internal error: {exc}")), False
        return response, op == "shutdown"

    # -- op handlers -----------------------------------------------------------

    async def _op_ping(self, _request: dict, _conn: _Connection) -> dict:
        return {
            "ok": True,
            "server": {
                "version": __version__,
                "protocol": PROTOCOL_REVISION,
                "policy": getattr(self.service.engine, "policy", None),
                "backend": self.service.config.backend,
                "role": self.service.role,
                "snapshot_version": self.service.version,
                "schema": {
                    relation.name: list(relation.attributes)
                    for relation in self.service.schema
                },
            },
        }

    async def _op_apply(self, request: dict, _conn: _Connection) -> dict:
        items = self._decode_items(request.get("events"))
        result = await self.service.apply(items, batch=bool(request.get("batch")))
        return {"ok": True, **result}

    def _decode_items(self, events) -> list:
        if not isinstance(events, list):
            raise ServerError("apply needs an 'events' list")
        items = log_from_events(decode_events(events)).items
        schema = self.service.schema
        for item in items:
            queries: Iterable[UpdateQuery] = (
                item.queries if isinstance(item, Transaction) else (item,)
            )
            for query in queries:
                if query.relation not in schema:
                    raise ServerError(
                        f"unknown relation {query.relation!r} "
                        f"(schema: {', '.join(schema.names)})"
                    )
                arity = schema.relation(query.relation).arity
                got = len(query.row) if isinstance(query, Insert) else query.pattern.arity
                if got != arity:
                    raise ServerError(
                        f"arity mismatch on {query.relation!r}: query says {got}, "
                        f"schema says {arity}"
                    )
        return items

    async def _op_provenance(self, request: dict, _conn: _Connection) -> dict:
        relation = self._known_relation(request)
        snapshot = await self.service.snapshot()
        rows = [
            [list(row), None if expr is None else expr_to_dict(expr), live]
            for row, (expr, live) in snapshot.state[relation].items()
        ]
        return {"ok": True, "version": snapshot.version, "rows": rows}

    async def _op_state(self, _request: dict, _conn: _Connection) -> dict:
        snapshot = await self.service.snapshot()
        return {
            "ok": True,
            "version": snapshot.version,
            # Arena wire form: one shared node table per capture (shared
            # structure ships once); clients decode either form.
            "relations": encode_capture(snapshot.state, arena=True),
        }

    async def _op_annotation_of(self, request: dict, _conn: _Connection) -> dict:
        relation = self._known_relation(request)
        row = request.get("row")
        if not isinstance(row, list):
            raise ServerError("annotation_of needs a 'row' list")
        snapshot = await self.service.snapshot()
        entry = snapshot.state[relation].get(tuple(row))
        expr = entry[0] if entry is not None else None
        return {
            "ok": True,
            "version": snapshot.version,
            "expr": None if expr is None else expr_to_dict(expr),
            "stored": entry is not None,
            "live": bool(entry[1]) if entry is not None else False,
        }

    async def _op_specialize(self, request: dict, _conn: _Connection) -> dict:
        structure = request.get("structure", "boolean")
        if structure != "boolean":
            raise ServerError(
                f"unsupported wire structure {structure!r}; the wire protocol "
                "ships the Boolean Update-Structure (use the library API for "
                "arbitrary structures)"
            )
        policy = getattr(self.service.engine, "policy", None)
        if policy in ("none", "no_provenance"):
            raise ServerError(f"policy {policy!r} does not track provenance")
        env = request.get("env") or {}
        if not isinstance(env, dict):
            raise ServerError("specialize needs an 'env' object of name -> bool")
        default = bool(request.get("default", True))
        assignment = {str(name): bool(value) for name, value in env.items()}
        structure_obj = BooleanStructure()
        lookup = lambda name: assignment.get(name, default)  # noqa: E731
        snapshot = await self.service.snapshot()
        values = {
            name: [
                [list(row), bool(evaluate(expr, structure_obj, lookup))]
                for row, (expr, _live) in rows.items()
                if expr is not None
            ]
            for name, rows in snapshot.state.items()
        }
        return {"ok": True, "version": snapshot.version, "values": values}

    async def _op_tuple_vars(self, _request: dict, _conn: _Connection) -> dict:
        return {
            "ok": True,
            "tuple_vars": encode_tuple_vars(self.service.tuple_vars()),
        }

    async def _op_stats(self, _request: dict, _conn: _Connection) -> dict:
        return {"ok": True, **await self.service.stats()}

    async def _op_checkpoint(self, _request: dict, _conn: _Connection) -> dict:
        return {"ok": True, "written": await self.service.checkpoint()}

    async def _op_subscribe(self, request: dict, conn: _Connection) -> dict:
        """Register a live view for this connection; the reply seeds it.

        The response carries the subscription id, the seed version, and
        the seeded rows in capture form; every later change to the view's
        slice arrives as a pushed ``"frame": "delta"`` batch.  Ordering:
        the seed response always precedes the first push, and pushes for
        one subscription arrive in version order.
        """
        relation = self._known_relation(request)
        encoded = request.get("pattern")
        arity = self.service.schema.relation(relation).arity
        if encoded is None:
            pattern = Pattern.any(arity)
        else:
            try:
                pattern = pattern_from_dict(encoded)
            except (KeyError, TypeError, ValueError) as exc:
                raise ServerError(f"malformed subscribe pattern: {exc}") from exc
            if pattern.arity != arity:
                raise ServerError(
                    f"pattern arity {pattern.arity} does not match "
                    f"{relation!r} (arity {arity})"
                )
        view, seed, version = await self.service.subscribe(relation, pattern)
        conn.subscriptions.add(view.view_id)
        self._subscriptions[view.view_id] = conn
        # Deltas flushed in the same writer cycle can beat this task's
        # resumption to the loop; they were parked and ship right after
        # the seed response (same ordered queue, so still in order).
        for frame in self._early_pushes.pop(view.view_id, ()):
            conn.pending.put_nowait(frame)
        return {
            "ok": True,
            "subscription": view.view_id,
            "version": version,
            "relation": relation,
            "pattern": pattern_to_dict(pattern),
            "rows": encode_capture({relation: seed}, arena=True),
        }

    async def _op_unsubscribe(self, request: dict, conn: _Connection) -> dict:
        view_id = request.get("subscription")
        if not isinstance(view_id, int) or isinstance(view_id, bool):
            raise ServerError("unsubscribe needs an integer 'subscription'")
        if view_id not in conn.subscriptions:
            raise ServerError(
                f"subscription {view_id} does not belong to this connection"
            )
        conn.subscriptions.discard(view_id)
        self._subscriptions.pop(view_id, None)
        existed = await self.service.unsubscribe(view_id)
        self._early_pushes.pop(view_id, None)
        return {"ok": True, "unsubscribed": bool(existed)}

    async def _op_promote(self, _request: dict, _conn: _Connection) -> dict:
        """Promote this follower to a writer (see ``repro.replication.node``).

        The node's promoter stops the shipping stream (a blocking join,
        hence the executor hop) and then runs the ``promote`` admission,
        so the role flip is ordered against every other admission.
        """
        promoter = self.service.promoter
        if promoter is None:
            raise ServerError("this server is not a promotable follower")
        result = await asyncio.get_running_loop().run_in_executor(None, promoter)
        return {"ok": True, **result}

    async def _op_shutdown(self, request: dict, _conn: _Connection) -> dict:
        # The reply ships before stop() runs (see _respond): the requesting
        # client learns its shutdown was accepted, then the server drains
        # admissions, flushes, checkpoints and exits.
        self._shutdown_checkpoint = bool(request.get("checkpoint", True))
        return {"ok": True, "closing": True}

    def _known_relation(self, request: dict) -> str:
        relation = request.get("relation")
        if not isinstance(relation, str) or relation not in self.service.schema:
            raise ServerError(
                f"unknown relation {relation!r} "
                f"(schema: {', '.join(self.service.schema.names)})"
            )
        return relation

    # -- push fanout (live views) ----------------------------------------------

    def _bridge_deltas(self, batch: DeltaBatch, per_view: dict) -> None:
        """The service's ``on_deltas`` hook: writer thread -> event loop."""
        if not per_view:
            return
        loop = self._loop
        if loop is None:
            return
        try:
            loop.call_soon_threadsafe(self._fanout, batch.version, per_view)
        except RuntimeError:
            pass  # loop already closed: shutdown raced the final flush

    def _fanout(self, version: int, per_view: dict) -> None:
        """Enqueue one pre-encoded push frame per touched subscription.

        Runs as a loop callback; encoding walks only immutable interned
        expressions (no interning, matching the transport's contract).
        ``pushed_at`` is a wall-clock stamp for consumer-side lag
        measurement (the loadgen's delta-lag histogram).
        """
        pushed_at = time.time()
        backlog = self.service.config.push_backlog
        for view_id, deltas in per_view.items():
            frame = {
                "ok": True,
                "frame": FRAME_DELTA,
                "subscription": view_id,
                "pushed_at": pushed_at,
                **encode_delta_batch(DeltaBatch(version, tuple(deltas))),
            }
            conn = self._subscriptions.get(view_id)
            if conn is None:
                # The subscribe dispatch has not registered yet (writer
                # resolved it this same cycle); park until it does.  Ids
                # of dropped subscriptions never reappear here: the
                # writer unregisters the view before its next flush.
                self._early_pushes.setdefault(view_id, []).append(frame)
                continue
            if conn.pending.qsize() >= backlog:
                self._drop_subscriptions(conn, lagged=True)
                continue
            conn.pending.put_nowait(frame)

    def _drop_subscriptions(self, conn: _Connection, lagged: bool) -> None:
        """Tear down a connection's subscriptions (close or slow consumer).

        Removal from the fanout map is immediate; the registry views are
        unregistered through ordinary admissions on a background task so
        this stays callable from non-async loop callbacks.  A ``lagged``
        drop queues one final notice telling the client to re-subscribe.
        """
        if not conn.subscriptions:
            return
        view_ids = sorted(conn.subscriptions)
        conn.subscriptions.clear()
        for view_id in view_ids:
            self._subscriptions.pop(view_id, None)
        if lagged:
            conn.pending.put_nowait(
                {
                    "ok": True,
                    "frame": FRAME_DELTA,
                    "lagged": True,
                    "subscriptions": view_ids,
                }
            )
        task = asyncio.get_running_loop().create_task(
            self._unsubscribe_views(view_ids)
        )
        self._cleanup_tasks.add(task)
        task.add_done_callback(self._cleanup_tasks.discard)

    async def _unsubscribe_views(self, view_ids: list[int]) -> None:
        for view_id in view_ids:
            try:
                await self.service.unsubscribe(view_id)
            except ReproError:
                pass  # service already shut down; the registry died with it
            self._early_pushes.pop(view_id, None)


_OPS = {
    "ping": ProvenanceServer._op_ping,
    "apply": ProvenanceServer._op_apply,
    "provenance": ProvenanceServer._op_provenance,
    "state": ProvenanceServer._op_state,
    "annotation_of": ProvenanceServer._op_annotation_of,
    "specialize": ProvenanceServer._op_specialize,
    "tuple_vars": ProvenanceServer._op_tuple_vars,
    "stats": ProvenanceServer._op_stats,
    "checkpoint": ProvenanceServer._op_checkpoint,
    "subscribe": ProvenanceServer._op_subscribe,
    "unsubscribe": ProvenanceServer._op_unsubscribe,
    "promote": ProvenanceServer._op_promote,
    "shutdown": ProvenanceServer._op_shutdown,
}


# ---------------------------------------------------------------------------
# Background-thread hosting (benchmarks, tests, examples)
# ---------------------------------------------------------------------------


class ServerHandle:
    """A server running on a background thread, stoppable from the caller."""

    def __init__(self, thread: threading.Thread, loop: asyncio.AbstractEventLoop, server: ProvenanceServer):
        self._thread = thread
        self._loop = loop
        self._server = server

    @property
    def host(self) -> str:
        return self._server.host

    @property
    def port(self) -> int:
        return self._server.port

    @property
    def address(self) -> tuple[str, int]:
        return self._server.host, self._server.port

    @property
    def service(self) -> ProvenanceService:
        return self._server.service

    def stop(self, checkpoint: bool = True, timeout: float = 60.0) -> None:
        """Graceful shutdown from the hosting thread; idempotent."""
        if self._thread.is_alive():
            future = asyncio.run_coroutine_threadsafe(
                self._server.stop(checkpoint=checkpoint), self._loop
            )
            try:
                future.result(timeout=timeout)
            except RuntimeError:
                pass  # loop already shut down concurrently
        self._thread.join(timeout=timeout)
        if self._thread.is_alive():  # pragma: no cover - stuck shutdown
            raise ServerError("server thread did not stop in time")

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *_exc) -> None:
        self.stop()


def serve_in_thread(
    database: Database | None = None,
    config: ServerConfig | None = None,
    start_timeout: float = 30.0,
    service_factory=None,
) -> ServerHandle:
    """Start a provenance server on a daemon thread; returns its handle.

    The engine is built (or recovered) on the server thread, the bound
    address is available as ``handle.host`` / ``handle.port`` once this
    returns, and ``handle.stop()`` performs the same graceful shutdown as
    the ``shutdown`` op.  Construction failures re-raise here.

    ``service_factory`` (when given) supplies the whole service instead —
    how a replication follower serves an engine it already bootstrapped
    (the writer-thread confinement starts at ``start()``, so a prebuilt
    engine is fine as long as nothing else touches it afterwards).
    """
    config = config or ServerConfig()
    started = threading.Event()
    holder: dict[str, object] = {}

    async def _main() -> None:
        try:
            if service_factory is not None:
                service = service_factory()
            else:
                service = ProvenanceService(build_engine(database, config), config)
            server = ProvenanceServer(service)
            await server.start()
        except BaseException as exc:  # noqa: BLE001 - reported to the caller
            holder["error"] = exc
            started.set()
            return
        holder["loop"] = asyncio.get_running_loop()
        holder["server"] = server
        started.set()
        await server.wait_stopped()

    thread = threading.Thread(
        target=lambda: asyncio.run(_main()), name="repro-server", daemon=True
    )
    thread.start()
    if not started.wait(timeout=start_timeout):  # pragma: no cover - hung start
        raise ServerError("server did not start in time")
    error = holder.get("error")
    if error is not None:
        thread.join(timeout=start_timeout)
        raise error  # type: ignore[misc]
    return ServerHandle(thread, holder["loop"], holder["server"])  # type: ignore[arg-type]
