"""The asyncio TCP transport of the provenance service.

:class:`ProvenanceServer` accepts connections, reads request frames, and
dispatches them against a :class:`~repro.server.service.ProvenanceService`.
Each connection is served by one task and answered strictly in order;
concurrency comes from many connections, whose ``apply`` admissions the
service's writer fuses and whose reads share published snapshots.

The event loop never touches the engine and never interns expressions:
request decoding stops at queries/patterns (plain data), and responses
encode expressions *from* immutable snapshots (``expr_to_dict`` creates
no nodes).  Every engine mutation stays on the service's writer thread.

:func:`serve_in_thread` runs a whole server on a background thread —
what the benchmarks, the stress tests and the example use to host a
server and its clients in one process.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Iterable

from .._version import __version__
from ..core.expr import evaluate
from ..db.database import Database
from ..errors import ReproError, ServerError
from ..queries.updates import Insert, Transaction, UpdateQuery
from ..semantics.boolean import BooleanStructure
from ..shard.codec import decode_events, encode_capture, encode_tuple_vars
from ..storage.exprjson import expr_to_dict
from ..workloads.logs import log_from_events
from .protocol import encode_frame, error_payload, read_frame
from .service import ProvenanceService, ServerConfig, build_engine

__all__ = ["ProvenanceServer", "ServerHandle", "serve_in_thread"]


async def _const(payload: dict, closing: bool) -> tuple[dict, bool]:
    """A pre-computed dispatch result (framing errors)."""
    return payload, closing


class ProvenanceServer:
    """One TCP endpoint over one :class:`ProvenanceService`."""

    def __init__(self, service: ProvenanceService, host: str | None = None, port: int | None = None):
        self.service = service
        self.host = host if host is not None else service.config.host
        self.port = port if port is not None else service.config.port
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.StreamWriter] = set()
        self._stopped = asyncio.Event()
        self._stopping = False
        self._stop_task: asyncio.Task | None = None
        self._shutdown_checkpoint = True

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> None:
        """Bind, start the writer, begin accepting connections."""
        self.service.start()
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]

    async def wait_stopped(self) -> None:
        await self._stopped.wait()

    async def stop(self, checkpoint: bool = True) -> None:
        """Graceful shutdown: stop accepting, drain admissions, close backend."""
        if self._stopping:
            await self._stopped.wait()
            return
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.service.close(checkpoint=checkpoint)
        for writer in list(self._connections):
            writer.close()
        self._stopped.set()

    # -- connection handling ---------------------------------------------------

    #: In-flight pipelined requests one connection may hold.  Bounds the
    #: dispatch tasks (and decoded payloads) a single peer can pin in
    #: memory; deep enough that admission fusion saturates long before it.
    MAX_PIPELINE = 1024

    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        """Serve one connection: pipelined dispatch, strictly ordered replies.

        Each request is dispatched on its own task *as soon as its frame
        arrives*, so a client that pipelines N apply frames lands N
        admissions in the service queue back-to-back — the depth the
        writer's run fusion feeds on.  A single responder drains the
        dispatch tasks in arrival order, so replies stay positional.
        Admission order equals frame order because tasks are scheduled
        FIFO and admission is their first suspension point.
        """
        self._connections.add(writer)
        loop = asyncio.get_running_loop()
        pending: asyncio.Queue[asyncio.Task | None] = asyncio.Queue()
        in_flight = asyncio.Semaphore(self.MAX_PIPELINE)
        responder = loop.create_task(self._respond(writer, pending))
        try:
            while not responder.done():
                try:
                    request = await read_frame(reader)
                except (asyncio.IncompleteReadError, ConnectionError, OSError):
                    break  # peer hung up (or stop() closed the transport)
                except ServerError as exc:
                    # Framing is broken: answer once, then hang up — the
                    # stream position can no longer be trusted.
                    await pending.put(loop.create_task(_const(error_payload(exc), False)))
                    break
                await in_flight.acquire()
                task = loop.create_task(self._dispatch(request))
                task.add_done_callback(lambda _t: in_flight.release())
                await pending.put(task)
        finally:
            await pending.put(None)  # EOF marker for the responder
            try:
                await responder
            finally:
                self._connections.discard(writer)
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass

    async def _respond(
        self, writer: asyncio.StreamWriter, pending: "asyncio.Queue[asyncio.Task | None]"
    ) -> None:
        """Write responses in arrival order; returns on EOF/hang-up/shutdown."""
        while True:
            task = await pending.get()
            if task is None:
                return
            response, closing = await task
            try:
                frame = encode_frame(response)
            except ServerError as exc:
                # A response that cannot serialize (non-JSON state values,
                # a capture bigger than MAX_FRAME) must still answer its
                # request — error_payload always encodes.
                frame = encode_frame(error_payload(exc))
            try:
                writer.write(frame)
                # Flush only at pipeline gaps: with more responses already
                # waiting, the transport buffer coalesces them into fewer
                # writes (drain still fires on every gap and before close,
                # so no response is ever left unflushed).
                if pending.empty() or closing:
                    await writer.drain()
                write_failed = False
            except (ConnectionError, OSError):
                write_failed = True  # peer is gone; an accepted shutdown still runs
            if closing:
                # Reply is flushed first: the requester learns its shutdown
                # was accepted, then the server drains, flushes, checkpoints
                # and exits.  stop() closes every connection, which unblocks
                # this handler's reader.  The task reference is held on the
                # server — the loop only keeps a weak one, and a GC'd stop
                # task would skip the final checkpoint.
                self._stop_task = asyncio.get_running_loop().create_task(
                    self.stop(checkpoint=self._shutdown_checkpoint)
                )
                return
            if write_failed:
                return

    async def _dispatch(self, request: dict) -> tuple[dict, bool]:
        """Route one request; returns ``(response, close-after-reply)``."""
        op = request.get("op")
        handler = _OPS.get(op)
        if handler is None:
            known = ", ".join(sorted(_OPS))
            return error_payload(ServerError(f"unknown op {op!r} (known: {known})")), False
        try:
            response = await handler(self, request)
        except asyncio.CancelledError:
            raise
        except ReproError as exc:
            return error_payload(exc), False
        except Exception as exc:  # noqa: BLE001 - a bug must not kill the connection
            return error_payload(ServerError(f"internal error: {exc}")), False
        return response, op == "shutdown"

    # -- op handlers -----------------------------------------------------------

    async def _op_ping(self, _request: dict) -> dict:
        return {
            "ok": True,
            "server": {
                "version": __version__,
                "policy": getattr(self.service.engine, "policy", None),
                "backend": self.service.config.backend,
                "snapshot_version": self.service.version,
                "schema": {
                    relation.name: list(relation.attributes)
                    for relation in self.service.schema
                },
            },
        }

    async def _op_apply(self, request: dict) -> dict:
        items = self._decode_items(request.get("events"))
        result = await self.service.apply(items, batch=bool(request.get("batch")))
        return {"ok": True, **result}

    def _decode_items(self, events) -> list:
        if not isinstance(events, list):
            raise ServerError("apply needs an 'events' list")
        items = log_from_events(decode_events(events)).items
        schema = self.service.schema
        for item in items:
            queries: Iterable[UpdateQuery] = (
                item.queries if isinstance(item, Transaction) else (item,)
            )
            for query in queries:
                if query.relation not in schema:
                    raise ServerError(
                        f"unknown relation {query.relation!r} "
                        f"(schema: {', '.join(schema.names)})"
                    )
                arity = schema.relation(query.relation).arity
                got = len(query.row) if isinstance(query, Insert) else query.pattern.arity
                if got != arity:
                    raise ServerError(
                        f"arity mismatch on {query.relation!r}: query says {got}, "
                        f"schema says {arity}"
                    )
        return items

    async def _op_provenance(self, request: dict) -> dict:
        relation = self._known_relation(request)
        snapshot = await self.service.snapshot()
        rows = [
            [list(row), None if expr is None else expr_to_dict(expr), live]
            for row, (expr, live) in snapshot.state[relation].items()
        ]
        return {"ok": True, "version": snapshot.version, "rows": rows}

    async def _op_state(self, _request: dict) -> dict:
        snapshot = await self.service.snapshot()
        return {
            "ok": True,
            "version": snapshot.version,
            # Arena wire form: one shared node table per capture (shared
            # structure ships once); clients decode either form.
            "relations": encode_capture(snapshot.state, arena=True),
        }

    async def _op_annotation_of(self, request: dict) -> dict:
        relation = self._known_relation(request)
        row = request.get("row")
        if not isinstance(row, list):
            raise ServerError("annotation_of needs a 'row' list")
        snapshot = await self.service.snapshot()
        entry = snapshot.state[relation].get(tuple(row))
        expr = entry[0] if entry is not None else None
        return {
            "ok": True,
            "version": snapshot.version,
            "expr": None if expr is None else expr_to_dict(expr),
            "stored": entry is not None,
            "live": bool(entry[1]) if entry is not None else False,
        }

    async def _op_specialize(self, request: dict) -> dict:
        structure = request.get("structure", "boolean")
        if structure != "boolean":
            raise ServerError(
                f"unsupported wire structure {structure!r}; the wire protocol "
                "ships the Boolean Update-Structure (use the library API for "
                "arbitrary structures)"
            )
        policy = getattr(self.service.engine, "policy", None)
        if policy in ("none", "no_provenance"):
            raise ServerError(f"policy {policy!r} does not track provenance")
        env = request.get("env") or {}
        if not isinstance(env, dict):
            raise ServerError("specialize needs an 'env' object of name -> bool")
        default = bool(request.get("default", True))
        assignment = {str(name): bool(value) for name, value in env.items()}
        structure_obj = BooleanStructure()
        lookup = lambda name: assignment.get(name, default)  # noqa: E731
        snapshot = await self.service.snapshot()
        values = {
            name: [
                [list(row), bool(evaluate(expr, structure_obj, lookup))]
                for row, (expr, _live) in rows.items()
                if expr is not None
            ]
            for name, rows in snapshot.state.items()
        }
        return {"ok": True, "version": snapshot.version, "values": values}

    async def _op_tuple_vars(self, _request: dict) -> dict:
        return {
            "ok": True,
            "tuple_vars": encode_tuple_vars(self.service.tuple_vars()),
        }

    async def _op_stats(self, _request: dict) -> dict:
        return {"ok": True, **await self.service.stats()}

    async def _op_checkpoint(self, _request: dict) -> dict:
        return {"ok": True, "written": await self.service.checkpoint()}

    async def _op_shutdown(self, request: dict) -> dict:
        # The reply ships before stop() runs (see _respond): the requesting
        # client learns its shutdown was accepted, then the server drains
        # admissions, flushes, checkpoints and exits.
        self._shutdown_checkpoint = bool(request.get("checkpoint", True))
        return {"ok": True, "closing": True}

    def _known_relation(self, request: dict) -> str:
        relation = request.get("relation")
        if not isinstance(relation, str) or relation not in self.service.schema:
            raise ServerError(
                f"unknown relation {relation!r} "
                f"(schema: {', '.join(self.service.schema.names)})"
            )
        return relation


_OPS = {
    "ping": ProvenanceServer._op_ping,
    "apply": ProvenanceServer._op_apply,
    "provenance": ProvenanceServer._op_provenance,
    "state": ProvenanceServer._op_state,
    "annotation_of": ProvenanceServer._op_annotation_of,
    "specialize": ProvenanceServer._op_specialize,
    "tuple_vars": ProvenanceServer._op_tuple_vars,
    "stats": ProvenanceServer._op_stats,
    "checkpoint": ProvenanceServer._op_checkpoint,
    "shutdown": ProvenanceServer._op_shutdown,
}


# ---------------------------------------------------------------------------
# Background-thread hosting (benchmarks, tests, examples)
# ---------------------------------------------------------------------------


class ServerHandle:
    """A server running on a background thread, stoppable from the caller."""

    def __init__(self, thread: threading.Thread, loop: asyncio.AbstractEventLoop, server: ProvenanceServer):
        self._thread = thread
        self._loop = loop
        self._server = server

    @property
    def host(self) -> str:
        return self._server.host

    @property
    def port(self) -> int:
        return self._server.port

    @property
    def address(self) -> tuple[str, int]:
        return self._server.host, self._server.port

    @property
    def service(self) -> ProvenanceService:
        return self._server.service

    def stop(self, checkpoint: bool = True, timeout: float = 60.0) -> None:
        """Graceful shutdown from the hosting thread; idempotent."""
        if self._thread.is_alive():
            future = asyncio.run_coroutine_threadsafe(
                self._server.stop(checkpoint=checkpoint), self._loop
            )
            try:
                future.result(timeout=timeout)
            except RuntimeError:
                pass  # loop already shut down concurrently
        self._thread.join(timeout=timeout)
        if self._thread.is_alive():  # pragma: no cover - stuck shutdown
            raise ServerError("server thread did not stop in time")

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *_exc) -> None:
        self.stop()


def serve_in_thread(
    database: Database | None = None,
    config: ServerConfig | None = None,
    start_timeout: float = 30.0,
) -> ServerHandle:
    """Start a provenance server on a daemon thread; returns its handle.

    The engine is built (or recovered) on the server thread, the bound
    address is available as ``handle.host`` / ``handle.port`` once this
    returns, and ``handle.stop()`` performs the same graceful shutdown as
    the ``shutdown`` op.  Construction failures re-raise here.
    """
    config = config or ServerConfig()
    started = threading.Event()
    holder: dict[str, object] = {}

    async def _main() -> None:
        try:
            service = ProvenanceService(build_engine(database, config), config)
            server = ProvenanceServer(service)
            await server.start()
        except BaseException as exc:  # noqa: BLE001 - reported to the caller
            holder["error"] = exc
            started.set()
            return
        holder["loop"] = asyncio.get_running_loop()
        holder["server"] = server
        started.set()
        await server.wait_stopped()

    thread = threading.Thread(
        target=lambda: asyncio.run(_main()), name="repro-server", daemon=True
    )
    thread.start()
    if not started.wait(timeout=start_timeout):  # pragma: no cover - hung start
        raise ServerError("server did not start in time")
    error = holder.get("error")
    if error is not None:
        thread.join(timeout=start_timeout)
        raise error  # type: ignore[misc]
    return ServerHandle(thread, holder["loop"], holder["server"])  # type: ignore[arg-type]
