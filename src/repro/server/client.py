"""A blocking client for the provenance service.

:class:`ServerClient` speaks the length-prefixed JSON protocol over one
TCP connection and presents the familiar engine surface: ``apply`` /
``apply_batch``, ``provenance`` / ``annotation_of`` / ``state``,
``specialize``, ``stats``, ``checkpoint``, ``shutdown``.  Updates are
encoded as the journal's replay vocabulary; provenance expressions come
back as ``exprjson`` DAG payloads and are **re-interned locally** — in
the server's own process the decoded objects are therefore the very
nodes the engine holds, which is what the bit-identity tests assert.

Requests on a connection are answered in order, so
:meth:`apply_pipelined` may ship many apply frames before reading any
response — the client-side half of admission batching: a deep queue lets
the server's writer fuse an entire backlog into one ``apply_batch`` call.
"""

from __future__ import annotations

import socket
import time
from typing import Iterable, Mapping

from ..core.expr import Expr, ZERO
from ..errors import ServerError
from ..queries.updates import Transaction, UpdateQuery
from ..shard.codec import decode_capture, decode_tuple_vars, items_to_events
from ..storage.exprjson import expr_from_dict
from .protocol import DEFAULT_PORT, recv_frame, send_frame

__all__ = ["ServerClient"]

#: Anything `apply` accepts: a query, a transaction, or nested iterables.
Applyable = UpdateQuery | Transaction | Iterable


def _as_items(item: Applyable) -> list[UpdateQuery | Transaction]:
    if isinstance(item, (UpdateQuery, Transaction)):
        return [item]
    if isinstance(item, Iterable) and not isinstance(item, (str, bytes)):
        items: list[UpdateQuery | Transaction] = []
        for element in item:
            items.extend(_as_items(element))
        return items
    raise ServerError(f"cannot apply {type(item).__name__}")


class ServerClient:
    """One blocking connection to a running provenance server."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        timeout: float = 60.0,
        connect_retry: float = 0.0,
    ):
        """Connect, retrying for up to ``connect_retry`` seconds.

        The retry window makes "start the server, then connect" scriptable
        without sleeps (the CI smoke test and the CLI client use it).
        """
        deadline = time.monotonic() + connect_retry
        while True:
            try:
                self._sock = socket.create_connection((host, port), timeout=timeout)
                break
            except OSError as exc:
                if time.monotonic() >= deadline:
                    raise ServerError(
                        f"cannot connect to {host}:{port}: {exc}"
                    ) from exc
                time.sleep(0.05)
        self.host, self.port = host, port

    # -- plumbing --------------------------------------------------------------

    def _send(self, op: str, **payload: object) -> None:
        try:
            send_frame(self._sock, {"op": op, **payload})
        except OSError as exc:
            raise ServerError(f"send to {self.host}:{self.port} failed: {exc}") from exc

    def _flush(self, buffer: bytearray) -> None:
        try:
            self._sock.sendall(buffer)
        except OSError as exc:
            raise ServerError(f"send to {self.host}:{self.port} failed: {exc}") from exc

    def _receive(self) -> dict:
        try:
            response = recv_frame(self._sock)
        except OSError as exc:
            raise ServerError(f"read from {self.host}:{self.port} failed: {exc}") from exc
        if not response.get("ok"):
            error = response.get("error") or {}
            raise ServerError(
                f"server error [{error.get('type', 'unknown')}]: "
                f"{error.get('message', 'no message')}"
            )
        return response

    def _call(self, op: str, **payload: object) -> dict:
        self._send(op, **payload)
        return self._receive()

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- the engine surface ----------------------------------------------------

    def ping(self) -> dict:
        """Server identity: version, policy, backend, schema."""
        return self._call("ping")["server"]

    def apply(self, item: Applyable, batch: bool = False) -> int:
        """Apply a query / transaction / iterable; returns queries applied."""
        events = items_to_events(_as_items(item))
        return int(self._call("apply", events=events, batch=batch)["applied"])

    def apply_batch(self, item: Applyable) -> int:
        """Like :meth:`apply`, requesting the batched pipeline server-side."""
        return self.apply(item, batch=True)

    def apply_pipelined(
        self,
        items: Iterable[Applyable],
        batch: bool = False,
        timings: list[tuple[float, float]] | None = None,
        flush_bytes: int = 1 << 20,
    ) -> int:
        """Ship one apply frame per element, then read every response.

        Pipelining keeps the server's admission queue deep, which is what
        lets the writer fuse a whole backlog into one ``apply_batch`` call
        — the measured win of ``server_comparison``.  Returns total
        queries applied; raises on the first failed response (later
        pipelined responses are drained so the connection stays usable).

        With ``timings`` a list, one ``(send, recv)`` ``perf_counter``
        pair is appended per request — failed ones included — in request
        order: ``send`` is stamped at the flush that put the request's
        frame on the socket (requests sharing a flush share its stamp),
        ``recv`` once its response frame has been read.  ``recv - send``
        is the request's honest per-op latency; before this hook existed,
        callers could only time the whole call and divide by the request
        count, which amortizes one slow operation across the batch.
        ``flush_bytes`` bounds how many frame bytes buffer between
        flushes (1 = one flush, and one send stamp, per frame).
        """
        from .protocol import encode_frame

        buffer = bytearray()
        shipped = 0
        unstamped = 0  # requests buffered since the last flush
        send_stamps: list[float] = []

        def flush() -> None:
            nonlocal unstamped
            self._flush(buffer)
            buffer.clear()
            if timings is not None:
                stamp = time.perf_counter()
                send_stamps.extend([stamp] * unstamped)
                unstamped = 0

        for element in items:
            buffer += encode_frame(
                {"op": "apply", "events": items_to_events(_as_items(element)), "batch": batch}
            )
            shipped += 1
            unstamped += 1
            if len(buffer) >= flush_bytes:
                flush()
        if buffer:
            flush()
        applied = 0
        failure: ServerError | None = None
        for index in range(shipped):
            try:
                applied += int(self._receive()["applied"])
            except ServerError as exc:
                failure = failure or exc
            finally:
                if timings is not None:
                    timings.append((send_stamps[index], time.perf_counter()))
        if failure is not None:
            raise failure
        return applied

    def provenance(self, relation: str) -> list[tuple[tuple, Expr, bool]]:
        """``(row, expression, live)`` per stored row, re-interned locally.

        The provenance-free policy reports ``ZERO`` expressions, exactly
        like :meth:`repro.shard.engine.ShardedEngine.provenance`.
        """
        response = self._call("provenance", relation=relation)
        return [
            (tuple(row), ZERO if encoded is None else expr_from_dict(encoded), bool(live))
            for row, encoded, live in response["rows"]
        ]

    def state(self) -> dict[str, dict[tuple, tuple[Expr | None, bool]]]:
        """The full ``{relation: {row: (expression, live)}}`` snapshot."""
        return decode_capture(self._call("state")["relations"])

    def raw_state(self) -> tuple[int, dict]:
        """The snapshot *without* decoding expressions: ``(version, payload)``.

        For readers that must not intern while another thread in the same
        process is still writing heavily (decode later, when quiescent) —
        the concurrent-reader stress test records these.
        """
        response = self._call("state")
        return int(response["version"]), response["relations"]

    def annotation_of(self, relation: str, row: Iterable[object]) -> Expr:
        """One row's provenance expression (``ZERO`` if never stored)."""
        response = self._call("annotation_of", relation=relation, row=list(row))
        encoded = response["expr"]
        return ZERO if encoded is None else expr_from_dict(encoded)

    def specialize(
        self, env: Mapping[str, bool], default: bool = True
    ) -> dict[str, dict[tuple, bool]]:
        """Boolean-structure valuation of every stored annotation.

        ``env`` assigns truth values by annotation name; unnamed
        annotations take ``default``.  The shape matches
        :meth:`repro.engine.engine.Engine.specialize` under
        :class:`~repro.semantics.boolean.BooleanStructure`.
        """
        response = self._call(
            "specialize", structure="boolean", env=dict(env), default=default
        )
        return {
            name: {tuple(row): bool(value) for row, value in rows}
            for name, rows in response["values"].items()
        }

    def tuple_vars(self) -> dict[str, dict[tuple, str]]:
        """Initial-tuple annotation names, ``{relation: {row: name}}``."""
        return decode_tuple_vars(self._call("tuple_vars")["tuple_vars"])

    def stats(self) -> dict:
        """``{"engine": ..., "server": ..., "memory": ...}`` counter blocks.

        ``memory`` (RSS, intern table size, sweep/arena counters) is empty
        when talking to a server predating the memory axis.
        """
        response = self._call("stats")
        return {
            "engine": response["engine"],
            "server": response["server"],
            "memory": response.get("memory", {}),
        }

    def checkpoint(self) -> int:
        """Force a durability checkpoint; returns checkpoints written."""
        return int(self._call("checkpoint")["written"])

    def shutdown(self, checkpoint: bool = True) -> None:
        """Ask the server to stop gracefully, then close this connection."""
        try:
            self._call("shutdown", checkpoint=checkpoint)
        finally:
            self.close()
