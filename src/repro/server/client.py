"""A blocking client for the provenance service.

:class:`ServerClient` speaks the length-prefixed JSON protocol over one
TCP connection and presents the familiar engine surface: ``apply`` /
``apply_batch``, ``provenance`` / ``annotation_of`` / ``state``,
``specialize``, ``stats``, ``checkpoint``, ``shutdown``.  Updates are
encoded as the journal's replay vocabulary; provenance expressions come
back as ``exprjson`` DAG payloads and are **re-interned locally** — in
the server's own process the decoded objects are therefore the very
nodes the engine holds, which is what the bit-identity tests assert.

Requests on a connection are answered in order, so
:meth:`apply_pipelined` may ship many apply frames before reading any
response — the client-side half of admission batching: a deep queue lets
the server's writer fuse an entire backlog into one ``apply_batch`` call.

:meth:`ServerClient.subscribe` registers a live view: the reply seeds a
:class:`Subscription`, after which the server pushes ``"frame": "delta"``
batches as the view's slice changes.  Pushed frames interleave *between*
responses, so :meth:`_receive` demultiplexes: any tagged frame read while
waiting for a response is routed to its subscription's queue and the read
continues.  The client stays single-threaded — when idle, a subscription
waits for pushes with a plain ``select`` on the socket.
"""

from __future__ import annotations

import select
import socket
import time
from collections import deque
from typing import Iterable, Iterator, Mapping

from ..core.expr import Expr, ZERO
from ..errors import ServerError
from ..queries.pattern import Pattern
from ..queries.updates import Transaction, UpdateQuery
from ..shard.codec import decode_capture, decode_tuple_vars, items_to_events
from ..storage.exprjson import expr_from_dict
from ..views import DeltaBatch, apply_delta_batch, decode_delta_batch
from ..workloads.logs import pattern_to_dict
from .protocol import DEFAULT_PORT, FRAME_DELTA, recv_frame, send_frame

__all__ = ["DeltaEvent", "ServerClient", "Subscription"]

#: Anything `apply` accepts: a query, a transaction, or nested iterables.
Applyable = UpdateQuery | Transaction | Iterable


def _as_items(item: Applyable) -> list[UpdateQuery | Transaction]:
    if isinstance(item, (UpdateQuery, Transaction)):
        return [item]
    if isinstance(item, Iterable) and not isinstance(item, (str, bytes)):
        items: list[UpdateQuery | Transaction] = []
        for element in item:
            items.extend(_as_items(element))
        return items
    raise ServerError(f"cannot apply {type(item).__name__}")


class ServerClient:
    """One blocking connection to a running provenance server."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        timeout: float = 60.0,
        connect_retry: float = 0.0,
    ):
        """Connect, retrying for up to ``connect_retry`` seconds.

        The retry window makes "start the server, then connect" scriptable
        without sleeps (the CI smoke test and the CLI client use it).
        """
        deadline = time.monotonic() + connect_retry
        while True:
            try:
                self._sock = socket.create_connection((host, port), timeout=timeout)
                break
            except OSError as exc:
                if time.monotonic() >= deadline:
                    raise ServerError(
                        f"cannot connect to {host}:{port}: {exc}"
                    ) from exc
                time.sleep(0.05)
        self.host, self.port = host, port
        #: subscription id -> queued pushed frames, filled by the demux.
        self._pushed: dict[int, deque] = {}
        #: Replication bookkeeping, updated from every response: the
        #: newest journal seq this connection's writes reached (primary
        #: apply responses carry ``seq``) and the newest snapshot version
        #: observed (a follower's version *is* its applied journal seq).
        self.last_seq: int | None = None
        self.last_version: int | None = None

    # -- plumbing --------------------------------------------------------------

    def _send(self, op: str, **payload: object) -> None:
        try:
            send_frame(self._sock, {"op": op, **payload})
        except OSError as exc:
            raise ServerError(f"send to {self.host}:{self.port} failed: {exc}") from exc

    def _flush(self, buffer: bytearray) -> None:
        try:
            self._sock.sendall(buffer)
        except OSError as exc:
            raise ServerError(f"send to {self.host}:{self.port} failed: {exc}") from exc

    def _receive(self) -> dict:
        while True:
            try:
                response = recv_frame(self._sock)
            except OSError as exc:
                raise ServerError(
                    f"read from {self.host}:{self.port} failed: {exc}"
                ) from exc
            # Server-pushed frames interleave between responses; route
            # them to their subscription and keep reading for the reply.
            if response.get("frame") == FRAME_DELTA:
                self._route_push(response)
                continue
            if not response.get("ok"):
                error = response.get("error") or {}
                raise ServerError(
                    f"server error [{error.get('type', 'unknown')}]: "
                    f"{error.get('message', 'no message')}"
                )
            if isinstance(response.get("seq"), int):
                self.last_seq = response["seq"]
            if isinstance(response.get("version"), int):
                self.last_version = response["version"]
            return response

    def _route_push(self, frame: dict) -> None:
        stamped = dict(frame)
        stamped["received_at"] = time.time()
        if frame.get("lagged"):
            # The slow-consumer notice names every dropped subscription.
            for view_id in frame.get("subscriptions", ()):
                queue = self._pushed.get(int(view_id))
                if queue is not None:
                    queue.append(stamped)
            return
        queue = self._pushed.get(int(frame.get("subscription", -1)))
        if queue is not None:
            queue.append(stamped)

    def _wait_push(self, timeout: float | None) -> bool:
        """Block until at least one frame arrives; False on timeout.

        Uses ``select`` *before* the blocking read so a timeout can never
        strand the stream mid-frame (the server writes whole frames, so
        once the header is readable the rest follows immediately).
        """
        ready, _, _ = select.select([self._sock], [], [], timeout)
        if not ready:
            return False
        frame = recv_frame(self._sock)
        if frame.get("frame") == FRAME_DELTA:
            self._route_push(frame)
            return True
        raise ServerError(
            "unsolicited response frame while waiting for pushes "
            "(another request is mid-flight on this connection?)"
        )

    def _call(self, op: str, **payload: object) -> dict:
        self._send(op, **payload)
        return self._receive()

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- the engine surface ----------------------------------------------------

    def ping(self) -> dict:
        """Server identity: version, policy, backend, schema."""
        return self._call("ping")["server"]

    def apply(self, item: Applyable, batch: bool = False) -> int:
        """Apply a query / transaction / iterable; returns queries applied."""
        events = items_to_events(_as_items(item))
        return int(self._call("apply", events=events, batch=batch)["applied"])

    def apply_batch(self, item: Applyable) -> int:
        """Like :meth:`apply`, requesting the batched pipeline server-side."""
        return self.apply(item, batch=True)

    def apply_pipelined(
        self,
        items: Iterable[Applyable],
        batch: bool = False,
        timings: list[tuple[float, float]] | None = None,
        flush_bytes: int = 1 << 20,
    ) -> int:
        """Ship one apply frame per element, then read every response.

        Pipelining keeps the server's admission queue deep, which is what
        lets the writer fuse a whole backlog into one ``apply_batch`` call
        — the measured win of ``server_comparison``.  Returns total
        queries applied; raises on the first failed response (later
        pipelined responses are drained so the connection stays usable).

        With ``timings`` a list, one ``(send, recv)`` ``perf_counter``
        pair is appended per request — failed ones included — in request
        order: ``send`` is stamped at the flush that put the request's
        frame on the socket (requests sharing a flush share its stamp),
        ``recv`` once its response frame has been read.  ``recv - send``
        is the request's honest per-op latency; before this hook existed,
        callers could only time the whole call and divide by the request
        count, which amortizes one slow operation across the batch.
        ``flush_bytes`` bounds how many frame bytes buffer between
        flushes (1 = one flush, and one send stamp, per frame).
        """
        from .protocol import encode_frame

        buffer = bytearray()
        shipped = 0
        unstamped = 0  # requests buffered since the last flush
        send_stamps: list[float] = []

        def flush() -> None:
            nonlocal unstamped
            self._flush(buffer)
            buffer.clear()
            if timings is not None:
                stamp = time.perf_counter()
                send_stamps.extend([stamp] * unstamped)
                unstamped = 0

        for element in items:
            buffer += encode_frame(
                {"op": "apply", "events": items_to_events(_as_items(element)), "batch": batch}
            )
            shipped += 1
            unstamped += 1
            if len(buffer) >= flush_bytes:
                flush()
        if buffer:
            flush()
        applied = 0
        failure: ServerError | None = None
        for index in range(shipped):
            try:
                applied += int(self._receive()["applied"])
            except ServerError as exc:
                failure = failure or exc
            finally:
                if timings is not None:
                    timings.append((send_stamps[index], time.perf_counter()))
        if failure is not None:
            raise failure
        return applied

    def provenance(self, relation: str) -> list[tuple[tuple, Expr, bool]]:
        """``(row, expression, live)`` per stored row, re-interned locally.

        The provenance-free policy reports ``ZERO`` expressions, exactly
        like :meth:`repro.shard.engine.ShardedEngine.provenance`.
        """
        response = self._call("provenance", relation=relation)
        return [
            (tuple(row), ZERO if encoded is None else expr_from_dict(encoded), bool(live))
            for row, encoded, live in response["rows"]
        ]

    def state(self) -> dict[str, dict[tuple, tuple[Expr | None, bool]]]:
        """The full ``{relation: {row: (expression, live)}}`` snapshot."""
        return decode_capture(self._call("state")["relations"])

    def raw_state(self) -> tuple[int, dict]:
        """The snapshot *without* decoding expressions: ``(version, payload)``.

        For readers that must not intern while another thread in the same
        process is still writing heavily (decode later, when quiescent) —
        the concurrent-reader stress test records these.
        """
        response = self._call("state")
        return int(response["version"]), response["relations"]

    def annotation_of(self, relation: str, row: Iterable[object]) -> Expr:
        """One row's provenance expression (``ZERO`` if never stored)."""
        response = self._call("annotation_of", relation=relation, row=list(row))
        encoded = response["expr"]
        return ZERO if encoded is None else expr_from_dict(encoded)

    def specialize(
        self, env: Mapping[str, bool], default: bool = True
    ) -> dict[str, dict[tuple, bool]]:
        """Boolean-structure valuation of every stored annotation.

        ``env`` assigns truth values by annotation name; unnamed
        annotations take ``default``.  The shape matches
        :meth:`repro.engine.engine.Engine.specialize` under
        :class:`~repro.semantics.boolean.BooleanStructure`.
        """
        response = self._call(
            "specialize", structure="boolean", env=dict(env), default=default
        )
        return {
            name: {tuple(row): bool(value) for row, value in rows}
            for name, rows in response["values"].items()
        }

    def tuple_vars(self) -> dict[str, dict[tuple, str]]:
        """Initial-tuple annotation names, ``{relation: {row: name}}``."""
        return decode_tuple_vars(self._call("tuple_vars")["tuple_vars"])

    def stats(self) -> dict:
        """``{"engine": ..., "server": ..., "memory": ...}`` counter blocks.

        ``memory`` (RSS, intern table size, sweep/arena counters) is empty
        when talking to a server predating the memory axis.
        """
        response = self._call("stats")
        blocks = {
            "engine": response["engine"],
            "server": response["server"],
            "memory": response.get("memory", {}),
        }
        if "replication" in response:
            blocks["replication"] = response["replication"]
        return blocks

    def checkpoint(self) -> int:
        """Force a durability checkpoint; returns checkpoints written."""
        return int(self._call("checkpoint")["written"])

    def promote(self) -> dict:
        """Promote a replication follower into a writer; returns role + seq."""
        response = self._call("promote")
        return {"role": response["role"], "seq": int(response["seq"])}

    def subscribe(
        self, relation: str, pattern: Pattern | None = None
    ) -> "Subscription":
        """Register a live view; returns its seeded :class:`Subscription`.

        ``pattern`` scopes the view to matching rows (``None`` = the whole
        relation).  The returned subscription holds the seeded answer set
        and keeps it current as pushed delta batches are consumed; seeded
        and pushed expressions are re-interned locally, so inside the
        server's process they are identical to the engine's own nodes.
        """
        payload: dict[str, object] = {"relation": relation}
        if pattern is not None:
            payload["pattern"] = pattern_to_dict(pattern)
        response = self._call("subscribe", **payload)
        view_id = int(response["subscription"])
        self._pushed[view_id] = deque()
        rows = decode_capture(response["rows"]).get(relation, {})
        return Subscription(
            self, view_id, relation, pattern, int(response["version"]), dict(rows)
        )

    def shutdown(self, checkpoint: bool = True) -> None:
        """Ask the server to stop gracefully, then close this connection."""
        try:
            self._call("shutdown", checkpoint=checkpoint)
        finally:
            self.close()


class DeltaEvent:
    """One consumed push: a decoded delta batch (or the ``lagged`` notice).

    ``lag`` is the publish-to-receive latency — the wall-clock distance
    between the server's fanout stamp and this client reading the frame
    off the socket (what the loadgen's delta-lag histogram aggregates).
    """

    __slots__ = ("batch", "lagged", "pushed_at", "received_at")

    def __init__(
        self,
        batch: DeltaBatch | None,
        lagged: bool,
        pushed_at: float | None,
        received_at: float,
    ):
        self.batch = batch
        self.lagged = lagged
        self.pushed_at = pushed_at
        self.received_at = received_at

    @property
    def lag(self) -> float | None:
        if self.pushed_at is None:
            return None
        return self.received_at - self.pushed_at


class Subscription:
    """One live view: a seeded answer set kept current by pushed deltas.

    ``rows`` is the maintained ``{row: (expr, live)}`` slice, ``version``
    the snapshot version it reflects — both advance as events are
    consumed through :meth:`next` / :meth:`drain` / iteration.  After a
    server-side slow-consumer drop, the final event has ``lagged`` set,
    ``active`` turns false, and the answer set is stale: re-subscribe for
    a fresh seed.  One client may hold several subscriptions; frames are
    demultiplexed by subscription id.
    """

    def __init__(
        self,
        client: ServerClient,
        view_id: int,
        relation: str,
        pattern: Pattern | None,
        version: int,
        rows: dict,
    ):
        self.client = client
        self.view_id = view_id
        self.relation = relation
        self.pattern = pattern
        self.version = version
        self.rows = rows
        self.active = True
        self.lagged = False

    def state(self) -> dict:
        """A detached copy of the maintained ``{row: (expr, live)}`` slice."""
        return dict(self.rows)

    def next(self, timeout: float | None = None) -> DeltaEvent | None:
        """The next pushed event, waiting up to ``timeout`` (``None`` = forever).

        Returns ``None`` on timeout.  Must not race an in-flight request
        on the same connection (the client is single-threaded by design).
        """
        queue = self.client._pushed.get(self.view_id)
        deadline = None if timeout is None else time.monotonic() + timeout
        while queue is not None and not queue:
            if not self.active:
                return None
            remaining = (
                None if deadline is None else max(0.0, deadline - time.monotonic())
            )
            if not self.client._wait_push(remaining):
                return None
        if queue is None or not queue:
            return None
        return self._consume(queue.popleft())

    def __iter__(self) -> Iterator[DeltaEvent]:
        """Yield events until the subscription ends (lag drop / unsubscribe)."""
        while self.active:
            event = self.next()
            if event is None:
                return
            yield event
            if event.lagged:
                return

    def drain(self, timeout: float = 0.0) -> list[DeltaEvent]:
        """Consume every event available within ``timeout``.

        With the default zero timeout this still pops everything already
        queued locally plus whatever a non-blocking poll finds readable.
        """
        events: list[DeltaEvent] = []
        deadline = time.monotonic() + timeout
        while True:
            event = self.next(timeout=max(0.0, deadline - time.monotonic()))
            if event is None:
                return events
            events.append(event)
            if event.lagged:
                return events

    def _consume(self, frame: dict) -> DeltaEvent:
        received_at = frame["received_at"]
        if frame.get("lagged"):
            self.active = False
            self.lagged = True
            return DeltaEvent(None, True, None, received_at)
        batch = decode_delta_batch(frame)
        apply_delta_batch({self.relation: self.rows}, batch)
        self.version = batch.version
        return DeltaEvent(batch, False, frame.get("pushed_at"), received_at)

    def unsubscribe(self) -> None:
        """Drop the view server-side and stop consuming; idempotent."""
        was_active = self.active
        self.active = False
        if was_active and not self.lagged:
            try:
                self.client._call("unsubscribe", subscription=self.view_id)
            except ServerError:
                pass  # already dropped server-side (lag raced the request)
        self.client._pushed.pop(self.view_id, None)
