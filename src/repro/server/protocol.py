"""The provenance service's wire protocol: length-prefixed JSON frames.

One frame is a 4-byte big-endian payload length followed by a UTF-8 JSON
object.  Requests carry ``{"op": ..., **arguments}``; responses carry
``{"ok": true, **results}`` or ``{"ok": false, "error": {"type", "message"}}``.
Requests on one connection are answered strictly in order, so a blocking
client may pipeline frames and read the responses back positionally.

Since protocol revision 2 a server may additionally *push* frames to a
connection that subscribed to a live view.  Pushed frames carry the
``"frame": "delta"`` tag (:data:`FRAME_DELTA`); its **absence** marks an
ordinary response, which is what every pre-revision-2 frame is — old
clients that never subscribe never receive a tagged frame and keep
working unchanged, and old servers simply answer ``subscribe`` with an
unknown-op error.  Pushed frames are interleaved *between* responses,
never inside one, so positional response reading still holds: a client
reading its Nth response skips any tagged frames it encounters (and may
queue them; see :class:`repro.server.client.Subscription`).

The payload vocabulary deliberately reuses the codecs the rest of the
system already trusts for durability and cross-process shipping:

* updates travel as the :meth:`repro.workloads.logs.UpdateLog.events`
  replay stream (``["query", query_to_dict(q)]`` / ``["txn_end", name]``)
  — the write-ahead journal's record vocabulary, regrouped server-side
  with :func:`repro.workloads.logs.log_from_events` so transaction hooks
  fire at exactly their event positions;
* provenance expressions travel as :func:`repro.storage.exprjson`
  DAG dicts and are re-interned by the receiving process, exactly like
  the shard worker captures (see :mod:`repro.shard.codec`).

Constants are therefore restricted to JSON scalars — the same restriction
every durable log already satisfies.

Operations (see :mod:`repro.server.server` for the handlers):

====================  =======================================================
``ping``              server identity: version, policy, backend, schema
``apply``             ``{"events": [...], "batch": bool}`` → applied count
``provenance``        one relation's ``[[row, expr|null, live], ...]``
``state``             every relation, as an :func:`encode_capture` payload
``annotation_of``     one row's expression (``null`` = never stored)
``specialize``        Boolean-structure valuation of every stored annotation
``tuple_vars``        initial-tuple annotation names (what-if valuations)
``stats``             engine counters + server admission counters
``checkpoint``        force a durability checkpoint (journaled backends)
``subscribe``         register a live view; reply seeds it, then the server
                      pushes ``"frame": "delta"`` batches as rows change
``unsubscribe``       drop one of this connection's subscriptions
``shutdown``          graceful stop: flush, checkpoint, close
====================  =======================================================
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Mapping

from ..errors import ServerError

__all__ = [
    "DEFAULT_PORT",
    "FRAME_DELTA",
    "MAX_FRAME",
    "PROTOCOL_REVISION",
    "encode_frame",
    "read_frame",
    "recv_frame",
    "send_frame",
    "error_payload",
]

#: Default TCP port of ``repro serve`` (override with ``--port``).
DEFAULT_PORT = 7464

#: Wire-protocol revision: 1 = request/response only, 2 = adds the
#: ``subscribe``/``unsubscribe`` ops and server-pushed delta frames.
#: Reported by ``ping`` so clients can feature-detect without probing.
PROTOCOL_REVISION = 2

#: The frame-type tag on server-pushed frames.  Absent on responses —
#: which is also what every pre-revision-2 frame looks like.
FRAME_DELTA = "delta"

#: Upper bound on one frame's JSON payload.  Full-state captures of large
#: engines are the biggest legitimate frames; 256 MiB is far above any
#: workload this reproduction ships while still bounding a corrupt or
#: hostile length prefix.
MAX_FRAME = 256 * 1024 * 1024

_HEADER = struct.Struct(">I")


def encode_frame(payload: Mapping[str, object]) -> bytes:
    """One wire frame: 4-byte big-endian length + compact JSON."""
    try:
        body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise ServerError(f"payload is not JSON-serializable: {exc}") from exc
    if len(body) > MAX_FRAME:
        raise ServerError(f"frame of {len(body)} bytes exceeds MAX_FRAME={MAX_FRAME}")
    return _HEADER.pack(len(body)) + body


def _decode_body(body: bytes) -> dict:
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ServerError(f"malformed frame payload: {exc}") from exc
    if not isinstance(payload, dict):
        raise ServerError(f"frame payload must be a JSON object, got {type(payload).__name__}")
    return payload


async def read_frame(reader) -> dict:
    """Read one frame from an :class:`asyncio.StreamReader`.

    Raises ``asyncio.IncompleteReadError`` on a clean EOF between frames
    (the caller treats that as the peer hanging up) and
    :class:`~repro.errors.ServerError` on an oversized length prefix.
    """
    header = await reader.readexactly(_HEADER.size)
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME:
        raise ServerError(f"frame of {length} bytes exceeds MAX_FRAME={MAX_FRAME}")
    return _decode_body(await reader.readexactly(length))


def send_frame(sock: socket.socket, payload: Mapping[str, object]) -> None:
    """Blocking counterpart of the stream writer (client side)."""
    sock.sendall(encode_frame(payload))


def recv_frame(sock: socket.socket) -> dict:
    """Blocking frame read; raises :class:`ServerError` on a torn stream."""
    header = _recv_exactly(sock, _HEADER.size)
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME:
        raise ServerError(f"frame of {length} bytes exceeds MAX_FRAME={MAX_FRAME}")
    return _decode_body(_recv_exactly(sock, length))


def _recv_exactly(sock: socket.socket, n: int) -> bytes:
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ServerError(
                f"connection closed mid-frame ({n - remaining} of {n} bytes read)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def error_payload(exc: BaseException) -> dict:
    """The standard error response body for an exception."""
    return {
        "ok": False,
        "error": {"type": type(exc).__name__, "message": str(exc)},
    }
