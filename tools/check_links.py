#!/usr/bin/env python
"""Fail on broken relative links in README.md and docs/**/*.md.

CI runs this as the docs gate (and ``tests/test_docs_links.py`` runs it
in the tier-1 suite): every markdown link whose target is a relative
path must point at a file or directory that exists in the repository.
External targets (``http(s)://``, ``mailto:``) and pure fragments
(``#section``) are skipped; a relative target's ``#fragment`` suffix is
stripped before the existence check.

Usage:  python tools/check_links.py [repo-root]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: ``[text](target)`` — the target must not contain whitespace or a
#: closing parenthesis (images ``![alt](target)`` match too).
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def markdown_files(root: Path) -> list[Path]:
    files = []
    readme = root / "README.md"
    if readme.exists():
        files.append(readme)
    files.extend(sorted((root / "docs").glob("**/*.md")))
    return files


def broken_links(root: Path) -> list[tuple[Path, str]]:
    broken = []
    for path in markdown_files(root):
        in_code_fence = False
        for line in path.read_text().splitlines():
            if line.lstrip().startswith("```"):
                in_code_fence = not in_code_fence
                continue
            if in_code_fence:
                continue
            for target in LINK.findall(line):
                if target.startswith(SKIP_PREFIXES):
                    continue
                relative = target.split("#", 1)[0]
                if not relative:
                    continue
                if not (path.parent / relative).exists():
                    broken.append((path, target))
    return broken


def main(argv: list[str]) -> int:
    root = Path(argv[1]) if len(argv) > 1 else Path(__file__).resolve().parent.parent
    files = markdown_files(root)
    broken = broken_links(root)
    for path, target in broken:
        print(f"BROKEN  {path.relative_to(root)}: ({target})")
    print(f"checked {len(files)} markdown files: {len(broken)} broken relative links")
    return 1 if broken else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
