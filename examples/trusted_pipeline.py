"""Certification of a data pipeline with mixed-trust sources.

A readings table is maintained by ingestion and cleaning transactions of
varying trustworthiness (a crowd-sourced feed, a calibrated sensor, a
manual fix).  Given a minimal trust level L, the certification structure
(Section 4.1) decides which output rows would exist in an execution
restricted to trusted tuples and transactions — per threshold, without
re-running the pipeline.

Run:  python examples/trusted_pipeline.py
"""

from repro.apps import Certification
from repro.db.database import Database
from repro.queries.updates import Delete, Insert, Modify, Transaction

READINGS = [
    ("station-1", "temp", 21),
    ("station-2", "temp", 19),
    ("station-3", "temp", 54),  # suspicious outlier from the crowd feed
]

TUPLE_SCORES = {
    ("readings", ("station-1", "temp", 21)): 0.95,  # calibrated sensor
    ("readings", ("station-2", "temp", 19)): 0.95,
    ("readings", ("station-3", "temp", 54)): 0.30,  # crowd-sourced
}

QUERY_SCORES = {
    "ingest_crowd": 0.40,  # a crowd-sourced batch insert
    "clean_outliers": 0.90,  # the cleaning job
    "manual_fix": 0.70,  # an operator's ad-hoc correction
}


def build_pipeline(db: Database):
    rel = db.relation("readings")
    return [
        Transaction(
            "ingest_crowd",
            [Insert.values(rel, {"station": "station-4", "kind": "temp", "value": 23})],
        ),
        Transaction(
            "clean_outliers",
            [Delete.where(rel, where={"value": 54})],
        ),
        Transaction(
            "manual_fix",
            [
                Modify.set(
                    rel, where={"station": "station-2"}, set_values={"value": 20}
                )
            ],
        ),
    ]


def main() -> None:
    db = Database.from_rows("readings", ["station", "kind", "value"], READINGS)
    pipeline = build_pipeline(db)

    for threshold in (0.25, 0.5, 0.8):
        app = Certification(
            db,
            pipeline,
            threshold=threshold,
            tuple_scores=TUPLE_SCORES,
            query_scores=QUERY_SCORES,
        )
        certified = app.certify()
        baseline = app.baseline()
        assert certified.same_contents(baseline), "certification diverged from re-run"
        print(f"certified rows at trust level L = {threshold} "
              f"(valuation took {app.usage_time * 1000:.2f} ms):")
        for row in sorted(certified.rows("readings")):
            print(f"  {row}")
        print()

    print(
        "Reading the output: at L=0.25 everything counts; at L=0.5 the crowd\n"
        "batch and the outlier row drop out; at L=0.8 the manual fix is no\n"
        "longer trusted either, so station-2 keeps its raw reading."
    )


if __name__ == "__main__":
    main()
