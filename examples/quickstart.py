"""Quickstart: the paper's products example, start to finish.

Builds the Figure 1a table, applies the transactions of Figure 2 with
provenance tracking, prints the annotated database of Figure 4, and runs
the two what-ifs of Examples 4.3/4.4 — all through the public API.

Run:  python examples/quickstart.py
"""

from repro import Database, Engine, Modify, Transaction, evaluate
from repro.semantics import BooleanStructure

# --- Figure 1a: the initial table, annotated p1..p4 ------------------------

ROWS = {
    ("Kids mnt bike", "Sport", 120): "p1",
    ("Tennis Racket", "Sport", 70): "p2",
    ("Kids mnt bike", "Kids", 120): "p3",
    ("Children sneakers", "Fashion", 40): "p4",
}


def build_database() -> Database:
    return Database.from_rows("products", ["product", "category", "price"], list(ROWS))


def main() -> None:
    db = build_database()
    rel = db.relation("products")

    print("Initial table (Figure 1a):")
    for row, annotation in ROWS.items():
        print(f"  {annotation}: {row}")

    # --- Figure 2: two annotated transactions ------------------------------
    t1 = Transaction(
        "p",
        [
            Modify.set(
                rel,
                where={"product": "Kids mnt bike", "category": "Kids"},
                set_values={"category": "Sport"},
            ),
            Modify.set(
                rel,
                where={"product": "Kids mnt bike", "category": "Sport"},
                set_values={"category": "Bicycles"},
            ),
        ],
    )
    t2 = Transaction(
        "p'", [Modify.set(rel, where={"category": "Sport"}, set_values={"price": 50})]
    )

    # --- track provenance while executing -----------------------------------
    engine = Engine(db, policy="normal_form", annotate=lambda _r, row, _i: ROWS[row])
    engine.apply(t1).apply(t2)

    print("\nAnnotated database after T1; T2 (cf. Figure 4):")
    for row, expr, live in sorted(engine.provenance("products"), key=repr):
        status = "live" if live else "gone"
        print(f"  [{status}] {row!r:44} {expr}")

    # --- Example 4.3: deletion propagation -----------------------------------
    # What if the Tennis Racket had never been in the catalog?  Assign
    # False to p2 and evaluate — no re-execution.
    booleans = BooleanStructure()
    without_racket = lambda name: name != "p2"  # noqa: E731
    racket_50 = engine.annotation_of("products", ("Tennis Racket", "Sport", 50))
    print("\nWhat-if (Example 4.3): delete the Tennis Racket from the input.")
    print(
        "  does (Tennis Racket, Sport, $50) survive? ->",
        evaluate(racket_50, booleans, without_racket),
    )

    # --- Example 4.4: transaction abortion ------------------------------------
    # What if T1 (annotation p) were aborted?  The bike stays in Sport, so
    # T2's price cut now hits it: (Kids mnt bike, Sport, 50) appears.
    without_t1 = lambda name: name != "p"  # noqa: E731
    print("\nWhat-if (Example 4.4): abort transaction T1.")
    for row, expr, _live in sorted(engine.provenance("products"), key=repr):
        if evaluate(expr, booleans, without_t1):
            print(f"  {row}")

    # --- the point of the normal form ----------------------------------------
    naive = Engine(db, policy="naive", annotate=lambda _r, row, _i: ROWS[row])
    naive.apply(t1).apply(t2)
    print(
        f"\nProvenance size: naive {naive.provenance_size()} nodes, "
        f"normal form {engine.provenance_size()} nodes "
        "(Theorem 5.3 keeps it linear; Section 5.1's naive construction does not)"
    )


if __name__ == "__main__":
    main()
