"""Provenance through the SQL front-end, persisted and reused offline.

Demonstrates the textual pipeline a downstream user would adopt:

1. declare a schema and load rows;
2. run an annotated SQL script (the hyperplane fragment of Section 2);
3. inspect the annotated rows, minimized per Proposition 5.5;
4. snapshot the annotated database to sqlite and answer a what-if from
   the snapshot alone — no engine, no log, no re-run.

Run:  python examples/sql_provenance.py
"""

import tempfile
from pathlib import Path

from repro import Database, Engine
from repro.core import minimize
from repro.lang import format_sql_script, parse_sql_script
from repro.semantics import BooleanStructure
from repro.storage import AnnotatedSnapshot, load_snapshot, save_snapshot

SCRIPT = """
-- seasonal maintenance, one annotated transaction per business action
BEGIN TRANSACTION clearance;
    UPDATE inventory SET price = 10 WHERE category = 'summer';
    DELETE FROM inventory WHERE category = 'discontinued';
COMMIT;

BEGIN TRANSACTION restock;
    INSERT INTO inventory VALUES ('scarf', 'winter', 25);
    UPDATE inventory SET price = 40 WHERE sku = 'parka';
COMMIT;
"""


def main() -> None:
    db = Database.from_rows(
        "inventory",
        ["sku", "category", "price"],
        [
            ("sunhat", "summer", 18),
            ("sandals", "summer", 35),
            ("parka", "winter", 120),
            ("pager", "discontinued", 5),
        ],
    )

    items = parse_sql_script(SCRIPT, db.schema)
    print("parsed script (round-tripped through the formatter):")
    print(format_sql_script(items, db.schema))

    engine = Engine(db, policy="normal_form")
    engine.apply(items)

    print("\nannotated inventory (minimized, Proposition 5.5):")
    for row, expr, live in sorted(engine.provenance("inventory"), key=repr):
        status = "live" if live else "gone"
        print(f"  [{status}] {row!r:38} {minimize(expr)}")

    # Persist the annotated state and throw the engine away.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "inventory.provenance.sqlite"
        save_snapshot(AnnotatedSnapshot.from_engine(engine, meta={"script": "seasonal"}), path)
        print(f"\nsnapshot saved to {path.name} ({path.stat().st_size} bytes)")

        snapshot = load_snapshot(path)
        # Offline what-if: abort the clearance transaction.
        values = snapshot.specialize(BooleanStructure(), lambda name: name != "clearance")
        print("inventory had 'clearance' never run (answered from the snapshot):")
        for row, present in sorted(values["inventory"].items(), key=repr):
            if present:
                print(f"  {row}")


if __name__ == "__main__":
    main()
