"""Retroactive audit of a TPC-C transaction stream.

An auditor discovers that one payment transaction was fraudulent and asks:
*what would the database look like had it never run?*  Without provenance
that means replaying the whole day's log.  With the UP[X] provenance this
is one valuation: assign False to that transaction's annotation.

The example generates a scaled TPC-C workload, tracks provenance under
the normal form, aborts a payment retroactively, and cross-checks the
answer against a literal re-run.

Run:  python examples/tpcc_audit.py
"""

import time

from repro.apps import TransactionAbortion
from repro.tpcc import TPCCScale, generate_tpcc


def main() -> None:
    workload = generate_tpcc(TPCCScale(warehouses=1), n_queries=300, seed=2024)
    print(
        f"TPC-C: {workload.database.total_rows():,} initial tuples, "
        f"{workload.log.query_count()} update queries in {len(workload.log)} transactions"
    )
    print(f"mix: {({k: v for k, v in workload.mix_counts.items() if v})}")

    app = TransactionAbortion(workload.database, workload.log)
    print(f"provenance tracked in {app.tracking_time:.2f}s (policy: normal form)")

    # Pick the third payment in the log as the fraudulent one.
    payments = [name for name in app.transaction_annotations() if name.startswith("payment")]
    suspect = payments[2]
    print(f"\nauditing: retroactively abort {suspect!r}")

    result = app.abort([suspect])
    print(f"  provenance valuation: {result.usage_time:.4f}s")

    started = time.perf_counter()
    baseline = app.baseline([suspect])
    rerun_time = time.perf_counter() - started
    print(f"  re-run baseline:      {rerun_time:.4f}s")

    assert result.database.same_contents(baseline), "audit answer diverged from re-run!"
    print("  consistent with a full re-run: yes")

    # What actually changes when the payment disappears?
    current = app.rerun_baseline()
    diff = current.diff(result.database)
    print("\nrows that differ without the suspect transaction:")
    for relation, (only_now, only_whatif) in sorted(diff.items()):
        for row in sorted(only_now, key=repr):
            print(f"  - {relation}: {row}")
        for row in sorted(only_whatif, key=repr):
            print(f"  + {relation}: {row}")

    # Drill into the affected customer's provenance.
    if "CUSTOMER" in diff:
        row = next(iter(diff["CUSTOMER"][0]))
        expr = app.engine.annotation_of("CUSTOMER", row)
        print(f"\nprovenance of the affected CUSTOMER row:\n  {expr}")


if __name__ == "__main__":
    main()
