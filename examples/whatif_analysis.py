"""Bulk what-if analysis: many deletion scenarios, one provenance run.

The paper's headline use case (Section 6.2): an analyst explores how the
result of an update-heavy workload depends on individual input tuples.
Re-running the workload per scenario costs a full execution each; with
provenance, every scenario is a valuation of the same expressions.

This example runs a synthetic workload once, then answers a whole batch of
deletion scenarios both ways, reporting the timings side by side and
verifying the answers agree (Proposition 4.2 in action).

Run:  python examples/whatif_analysis.py
"""

import random
import time

from repro.apps import DeletionPropagation
from repro.workloads import synthetic_workload


def main() -> None:
    workload = synthetic_workload(
        n_tuples=5_000, n_queries=300, n_groups=10, group_size=5,
        queries_per_transaction=300,  # the paper's single-annotation model
        domain_size=100, seed=11,
    )
    print(
        f"synthetic workload: {workload.database.total_rows():,} tuples, "
        f"{workload.log.query_count()} update queries, "
        f"{workload.config.affected_tuples} affected tuples"
    )

    app = DeletionPropagation(workload.database, workload.log)
    print(f"provenance tracked once in {app.tracking_time:.2f}s\n")

    rng = random.Random(5)
    hot_rows = sorted(
        row for row in workload.database.rows("synthetic") if row[1] != -1
    )
    scenarios = [
        [("synthetic", row) for row in rng.sample(hot_rows, k)] for k in (1, 2, 5, 10)
    ]

    total_usage = total_rerun = 0.0
    for i, deletions in enumerate(scenarios, start=1):
        result = app.propagate(deletions)
        started = time.perf_counter()
        baseline = app.baseline(deletions)
        rerun = time.perf_counter() - started
        assert result.database.same_contents(baseline)
        total_usage += result.usage_time
        total_rerun += rerun
        print(
            f"scenario {i}: delete {len(deletions):2d} tuples -> "
            f"valuation {result.usage_time * 1000:7.1f} ms | "
            f"re-run {rerun * 1000:7.1f} ms | answers agree"
        )

    print(
        f"\nbatch of {len(scenarios)} scenarios: valuations {total_usage:.2f}s "
        f"vs re-runs {total_rerun:.2f}s "
        f"({total_rerun / max(total_usage, 1e-9):.1f}x, and the gap widens with "
        "database size — the paper reports x45-x91 at 1M tuples)"
    )


if __name__ == "__main__":
    main()
