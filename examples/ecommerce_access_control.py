"""Access control for a multi-region catalog (paper Section 4.1).

An e-commerce platform serves three regions.  Catalog rows and the update
transactions that maintain them carry *credential sets* (the regions they
apply to); the set Update-Structure propagates those credentials through
inserts, deletes and price updates, so each region's storefront is a
valuation of the same provenance — maintained once, specialized per region.

Run:  python examples/ecommerce_access_control.py
"""

from repro.apps import AccessControl
from repro.db.database import Database
from repro.queries.updates import Delete, Insert, Modify, Transaction

REGIONS = {"EU", "US", "JP"}

CATALOG = [
    ("City bike", "Bicycles", 400),
    ("Kids helmet", "Safety", 35),
    ("Rice cooker", "Kitchen", 90),
    ("Espresso pot", "Kitchen", 25),
]


def main() -> None:
    db = Database.from_rows("catalog", ["product", "category", "price"], CATALOG)
    rel = db.relation("catalog")

    # Region-specific maintenance transactions.
    maintenance = [
        # A worldwide price cut on kitchen gear.
        Transaction(
            "kitchen_sale",
            [Modify.set(rel, where={"category": "Kitchen"}, set_values={"price": 19})],
        ),
        # An EU-only safety recall: helmets leave the EU storefront.
        Transaction(
            "eu_recall",
            [Delete.where(rel, where={"category": "Safety"})],
        ),
        # A product launched only in Japan.
        Transaction(
            "jp_launch",
            [Insert.values(rel, {"product": "Bento box", "category": "Kitchen", "price": 15})],
        ),
    ]

    app = AccessControl(
        db,
        maintenance,
        universe=REGIONS,
        # The rice cooker was never cleared for the US market.
        tuple_credentials={("catalog", ("Rice cooker", "Kitchen", 90)): {"EU", "JP"}},
        query_credentials={
            "kitchen_sale": REGIONS,
            "eu_recall": {"EU"},
            "jp_launch": {"JP"},
        },
    )

    for region in sorted(REGIONS):
        print(f"Storefront for {region}:")
        for row in sorted(app.visible_to(region).rows("catalog")):
            print(f"  {row}")
        print()

    print("Raw credential sets (one valuation, all regions at once):")
    for row, credentials in sorted(app.credentials()["catalog"].items(), key=repr):
        print(f"  {row!r:38} -> {sorted(credentials) or '(hidden everywhere)'}")
    print(f"\ncredential valuation took {app.usage_time * 1000:.2f} ms "
          "(no per-region re-execution)")


if __name__ == "__main__":
    main()
