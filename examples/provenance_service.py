"""The provenance engine as a network service (PR 5).

Starts a durable provenance server on a temporary directory, talks to it
over TCP with the blocking client — the paper's products walkthrough,
then several concurrent clients issuing updates and provenance reads at
once — and asserts the served state is bit-identical to a direct
in-process engine.  Finally the server shuts down gracefully
(flush + checkpoint) and the directory alone reproduces the state.

Run:  python examples/provenance_service.py
"""

import tempfile
import threading
from pathlib import Path

from repro.db.database import Database
from repro.db.schema import Relation, Schema
from repro.engine.engine import Engine
from repro.queries.updates import Delete, Insert, Modify, Transaction
from repro.server import ServerClient, ServerConfig, serve_in_thread
from repro.shard.codec import capture_engine
from repro.wal.recovery import recover

N_WRITERS = 3
ROWS_PER_WRITER = 25

PRODUCTS = [
    ("Kids mnt bike", "Sport", 120),
    ("Tennis Racket", "Sport", 70),
    ("Kids mnt bike", "Kids", 120),
    ("Children sneakers", "Fashion", 40),
]


def build_database() -> Database:
    schema = Schema(
        [Relation("products", ["product", "category", "price"])]
        + [Relation(f"feed_{i}", ["id", "value"]) for i in range(N_WRITERS)]
    )
    db = Database(schema)
    db.extend("products", PRODUCTS)
    return db


def products_transactions(db: Database):
    rel = db.relation("products")
    t1 = Transaction("t1", [
        Modify.set(rel, where={"product": "Kids mnt bike", "category": "Kids"},
                   set_values={"category": "Sport"}),
        Modify.set(rel, where={"product": "Kids mnt bike", "category": "Sport"},
                   set_values={"category": "Bicycles"}),
    ])
    t2 = Transaction("t2", [Delete.where(rel, {"category": "Sport"})])
    return [t1, t2]


def feed_queries(i: int):
    return [
        Insert(f"feed_{i}", (j, f"v{i}.{j}"), annotation=f"w{i}q{j}")
        for j in range(ROWS_PER_WRITER)
    ]


def main() -> None:
    database = build_database()
    with tempfile.TemporaryDirectory() as tmp:
        directory = Path(tmp) / "state"
        config = ServerConfig(
            port=0,  # ephemeral; handle.port reports the bound port
            backend="journaled",
            policy="normal_form_batch",
            directory=str(directory),
        )
        handle = serve_in_thread(database, config)
        print(f"serving on {handle.host}:{handle.port} (journaled, normal_form_batch)")

        # -- the paper's walkthrough, over the wire --------------------------
        transactions = products_transactions(database)
        with ServerClient(handle.host, handle.port) as client:
            client.apply(transactions)
            print("\nAnnotated products after T1; T2 (served over TCP):")
            for row, expr, live in sorted(client.provenance("products"), key=repr):
                flag = "live" if live else "gone"
                print(f"  [{flag}] {row!r:46} {expr}")
            survivors = client.specialize({"t1": False})  # what-if: abort T1
            print("what-if (abort t1) live products:",
                  sorted(row for row, value in survivors["products"].items() if value))

        # -- concurrent clients: updates and provenance reads at once --------
        stop = threading.Event()
        read_counts = [0, 0]
        failures: list[BaseException] = []

        def writer(i: int) -> None:
            try:
                with ServerClient(handle.host, handle.port) as connection:
                    for query in feed_queries(i):
                        connection.apply(query)
            except BaseException as exc:  # noqa: BLE001
                failures.append(exc)

        def reader(k: int) -> None:
            try:
                with ServerClient(handle.host, handle.port) as connection:
                    while not stop.is_set():
                        # Raw polls: reads served from published snapshots,
                        # never blocking the writer (decode after quiesce).
                        connection._call("provenance", relation=f"feed_{k}")
                        read_counts[k] += 1
            except BaseException as exc:  # noqa: BLE001
                failures.append(exc)

        threads = [threading.Thread(target=writer, args=(i,)) for i in range(N_WRITERS)]
        threads += [threading.Thread(target=reader, args=(k,)) for k in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads[:N_WRITERS]:
            thread.join()
        stop.set()
        for thread in threads[N_WRITERS:]:
            thread.join()
        assert not failures, failures[0]
        print(f"\nconcurrent phase: {N_WRITERS} writers x {ROWS_PER_WRITER} updates, "
              f"readers polled provenance {sum(read_counts)} times mid-stream")

        # -- agreement with a direct in-process engine -----------------------
        direct = Engine(build_database(), policy="normal_form_batch")
        direct.apply(transactions)
        for i in range(N_WRITERS):
            direct.apply(feed_queries(i))  # disjoint relations: order-free
        expected = capture_engine(direct)

        with ServerClient(handle.host, handle.port) as client:
            served = client.state()
        agree = served.keys() == expected.keys() and all(
            served[name].keys() == expected[name].keys()
            and all(
                served[name][row][1] == live and served[name][row][0] is expr
                for row, (expr, live) in expected[name].items()
            )
            for name in expected
        )
        print("server state agrees with the in-process engine:",
              "yes" if agree else "NO")
        assert agree

        # -- graceful shutdown + recovery from the directory alone -----------
        with ServerClient(handle.host, handle.port) as client:
            client.shutdown()  # drains, flushes the batch policy, checkpoints
        handle.stop()
        recovered = recover(directory)
        assert recovered.recovery.tail_records == 0  # clean checkpointed stop
        assert capture_engine(recovered).keys() == expected.keys()
        recovered.journal.close()
        print(f"recovered {directory.name}/ after shutdown: "
              f"{recovered.support_count()} support rows, zero journal tail")


if __name__ == "__main__":
    main()
