"""Figure 7: provenance overhead and usage on TPC-C.

Three benchmark groups mirror the figure's three panels:

* ``fig7b-runtime`` — executing the log under each policy (7b);
* ``fig7c-usage`` — the deletion-propagation valuation vs. the re-run
  baseline at the final state (7c);
* the memory series (7a) has no timing component: it is asserted for
  shape and persisted to ``results/fig7a.*``.
"""

import random

import pytest

from repro.bench.figures import figure_7
from repro.bench.measure import usage_measurement
from repro.engine.engine import Engine

from .conftest import save_figures


def replay(workload, policy):
    log = workload.log.as_single_transaction()
    engine = Engine(workload.database, policy=policy)
    engine.apply(log)
    return engine


@pytest.mark.benchmark(group="fig7b-runtime")
@pytest.mark.parametrize("policy", ["none", "naive", "normal_form"])
def test_fig7b_runtime(benchmark, tpcc_workload, policy):
    engine = benchmark.pedantic(
        replay, args=(tpcc_workload, policy), rounds=3, iterations=1
    )
    assert engine.live_count() > 0


@pytest.mark.benchmark(group="fig7c-usage")
@pytest.mark.parametrize("policy", ["naive", "normal_form"])
def test_fig7c_usage_valuation(benchmark, tpcc_workload, scale, policy):
    log = tpcc_workload.log.as_single_transaction()
    engine = replay(tpcc_workload, policy)

    def valuation():
        return usage_measurement(
            engine,
            tpcc_workload.database,
            log,
            n_deletions=scale.usage_deletions,
            rng=random.Random(99),
            verify=False,
        )

    measurement = benchmark.pedantic(valuation, rounds=3, iterations=1)
    assert measurement.usage_time >= 0


@pytest.mark.benchmark(group="fig7c-usage")
def test_fig7c_rerun_baseline(benchmark, tpcc_workload):
    log = tpcc_workload.log.as_single_transaction()

    def rerun():
        return Engine(tpcc_workload.database, policy="none").apply(log).result()

    result = benchmark.pedantic(rerun, rounds=3, iterations=1)
    assert result.total_rows() > 0


@pytest.mark.benchmark(group="figures")
def test_fig7_series_shapes(benchmark, scale, results_dir):
    """7a/7b/7c series: the paper's orderings hold; artifacts persisted."""
    figures = benchmark.pedantic(figure_7, args=(scale,), rounds=1, iterations=1)
    save_figures(figures, results_dir)
    fig7a, fig7b, fig7c = figures

    for row in fig7a.rows:
        assert row["naive stored nodes"] >= row["nf stored nodes"]
        assert row["naive expanded size"] >= row["nf expanded size"]
    final = fig7a.rows[-1]
    assert final["naive expanded size"] > final["nf expanded size"]

    final_b = fig7b.rows[-1]
    assert final_b["no provenance [s]"] <= final_b["no axioms [s]"] * 1.25

    assert all(row["consistent"] for row in fig7c.rows)
