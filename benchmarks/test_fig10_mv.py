"""Figure 10: comparison with the MV-semiring baseline [Arab et al. 2016]."""

import pytest

from repro.bench.figures import figure_10
from repro.engine.engine import Engine

from .conftest import save_figures

POLICIES = ["naive", "normal_form", "mv_tree", "mv_string"]


@pytest.mark.benchmark(group="fig10b-runtime")
@pytest.mark.parametrize("policy", POLICIES)
def test_fig10b_runtime(benchmark, synthetic, policy):
    _config, database, log = synthetic
    single = log.as_single_transaction()

    def replay():
        engine = Engine(database, policy=policy)
        engine.apply(single)
        return engine

    engine = benchmark.pedantic(replay, rounds=3, iterations=1)
    assert engine.live_count() > 0


@pytest.mark.benchmark(group="figures")
def test_fig10_series_shapes(benchmark, scale, results_dir):
    fig10a, fig10b = benchmark.pedantic(figure_10, args=(scale,), rounds=1, iterations=1)
    save_figures([fig10a, fig10b], results_dir)
    final = fig10a.rows[-1]
    # The implementation-independent measure: normal form smallest, the
    # naive construction above the MV baseline (it duplicates tuples).
    assert final["nf length+rows"] <= final["mv length+rows"]
    assert final["naive length+rows"] >= final["nf length+rows"]
    # Memory series grow monotonically for naive and MV.
    naive_series = [row["naive length+rows"] for row in fig10a.rows]
    assert naive_series == sorted(naive_series)
