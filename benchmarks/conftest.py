"""Shared benchmark fixtures.

Benchmarks default to the ``tiny`` scale so the whole suite runs in well
under a minute; export ``REPRO_BENCH_SCALE=small|medium|paper`` to
approach the paper's instance sizes.  Besides the pytest-benchmark timing
tables, every figure's series rows are written to ``benchmarks/results/``
(JSON + CSV) — the same artifacts ``repro figure all --save`` produces.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.bench.scales import SCALES
from repro.tpcc.driver import generate_tpcc
from repro.tpcc.loader import TPCCScale
from repro.workloads.synthetic import SyntheticConfig, synthetic_database, synthetic_log

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def scale():
    name = os.environ.get("REPRO_BENCH_SCALE", "tiny").lower()
    if name not in SCALES:
        raise KeyError(f"unknown REPRO_BENCH_SCALE {name!r}")
    return SCALES[name]


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def tpcc_workload(scale):
    return generate_tpcc(
        TPCCScale(warehouses=scale.tpcc_warehouses), n_queries=scale.tpcc_queries, seed=42
    )


@pytest.fixture(scope="session")
def synthetic(scale):
    config = SyntheticConfig(
        n_tuples=scale.synthetic_tuples,
        n_queries=scale.synthetic_queries,
        n_groups=max(1, scale.synthetic_affected // scale.synthetic_per_query),
        group_size=scale.synthetic_per_query,
        seed=7,
    )
    return config, synthetic_database(config), synthetic_log(config)


def save_figures(figures, results_dir):
    """Persist figure series and print them (visible under ``pytest -s``)."""
    for figure in figures:
        figure.save(results_dir)
        figure.print()
