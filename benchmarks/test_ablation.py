"""Ablation: annotation granularity vs normal-form leverage (ours).

DESIGN.md calls out the single-annotation execution model as the paper's
setup; this ablation quantifies what that choice buys.  With per-query
annotations the Figure 3 axioms never fire (each relates operations of
*one* annotation) and the normal form degenerates to the naive policy; the
whole-log annotation restores Theorem 5.3's compression.
"""

import dataclasses

import pytest

from repro.bench.figures import ablation_annotations
from repro.bench.measure import series_run
from repro.workloads.synthetic import SyntheticConfig, synthetic_database, synthetic_log

from .conftest import save_figures


@pytest.mark.benchmark(group="ablation-annotations")
@pytest.mark.parametrize("queries_per_annotation", [1, 25])
def test_ablation_nf_runtime(benchmark, scale, queries_per_annotation):
    config = SyntheticConfig(
        n_tuples=scale.synthetic_tuples,
        n_queries=min(scale.synthetic_queries, 200),
        n_groups=max(1, (scale.synthetic_affected // 2) // scale.synthetic_per_query),
        group_size=scale.synthetic_per_query,
        queries_per_transaction=queries_per_annotation,
        seed=7,
    )
    database = synthetic_database(config)
    log = synthetic_log(config)

    def run():
        return series_run(database, log, "normal_form", [config.n_queries])

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.final().queries == config.n_queries


@pytest.mark.benchmark(group="figures")
def test_ablation_series_shape(benchmark, scale, results_dir):
    (fig,) = benchmark.pedantic(ablation_annotations, args=(scale,), rounds=1, iterations=1)
    save_figures([fig], results_dir)
    per_query_row = fig.rows[0]
    whole_log_row = fig.rows[-1]
    # Per-query annotations: the two policies store identical provenance.
    assert per_query_row["naive stored nodes"] == per_query_row["nf stored nodes"]
    # Whole-log annotation: the normal form compresses substantially.
    assert whole_log_row["nf stored nodes"] * 2 < whole_log_row["naive stored nodes"]
    # Monotone: more batching, more compression.
    nf_sizes = [row["nf stored nodes"] for row in fig.rows]
    assert nf_sizes == sorted(nf_sizes, reverse=True)
