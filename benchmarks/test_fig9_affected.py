"""Figure 9: sensitivity to the number of affected tuples.

9a sweeps the *total* affected set at a fixed query count (fewer affected
tuples = more updates per tuple = a larger normal-form advantage); 9b
sweeps the tuples affected *per query* over a 5-modification log.
"""

import pytest

from repro.bench.figures import figure_9a, figure_9b
from repro.bench.measure import series_run
from repro.workloads.synthetic import SyntheticConfig, synthetic_database, synthetic_log

from .conftest import save_figures


def _workload(scale, total_affected):
    config = SyntheticConfig(
        n_tuples=scale.synthetic_tuples,
        n_queries=scale.fig9a_queries,
        n_groups=max(1, total_affected // scale.synthetic_per_query),
        group_size=scale.synthetic_per_query,
        seed=7,
    )
    return synthetic_database(config), synthetic_log(config).as_single_transaction()


@pytest.mark.benchmark(group="fig9a-time")
@pytest.mark.parametrize("policy", ["naive", "normal_form"])
@pytest.mark.parametrize("end", ["smallest", "largest"])
def test_fig9a_endpoints_runtime(benchmark, scale, policy, end):
    fraction = scale.fig9a_fractions[0 if end == "smallest" else -1]
    total = max(
        scale.synthetic_per_query, int(scale.synthetic_tuples * fraction)
    )
    total -= total % scale.synthetic_per_query
    database, log = _workload(scale, total)

    def run():
        return series_run(database, log, policy, [log.query_count()], measure_sizes=False)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.final().queries == log.query_count()


@pytest.mark.benchmark(group="figures")
def test_fig9a_series_shape(benchmark, scale, results_dir):
    (fig,) = benchmark.pedantic(figure_9a, args=(scale,), rounds=1, iterations=1)
    save_figures([fig], results_dir)
    assert len(fig.rows) == len(scale.fig9a_fractions)
    # The gap (naive/nf stored ratio) shrinks as the affected set grows.
    ratios = [
        row["naive stored nodes"] / max(row["nf stored nodes"], 1) for row in fig.rows
    ]
    assert ratios[0] > ratios[-1]
    for row in fig.rows:
        assert row["naive stored nodes"] >= row["nf stored nodes"]


@pytest.mark.benchmark(group="figures")
def test_fig9b_series_shape(benchmark, scale, results_dir):
    (fig,) = benchmark.pedantic(figure_9b, args=(scale,), rounds=1, iterations=1)
    save_figures([fig], results_dir)
    assert len(fig.rows) == len(scale.fig9b_per_query)
    # Memory grows with per-query touch count for both policies...
    naive_sizes = [row["naive stored nodes"] for row in fig.rows]
    nf_sizes = [row["nf stored nodes"] for row in fig.rows]
    assert naive_sizes == sorted(naive_sizes)
    assert nf_sizes == sorted(nf_sizes)
    # ...with the naive policy consistently above.
    for naive_size, nf_size in zip(naive_sizes, nf_sizes):
        assert naive_size >= nf_size
