"""Proposition 5.1: the adversarial alternation, timed and sized."""

import pytest

from repro.bench.figures import figure_blowup
from repro.bench.measure import series_run
from repro.db.database import Database
from repro.queries.pattern import Pattern
from repro.queries.updates import Modify, Transaction
from repro.workloads.logs import UpdateLog

from .conftest import save_figures


def alternating(n_queries):
    db = Database.from_rows("R", ["value"], [("a",), ("b",)])
    u12 = Modify("R", Pattern(1, eq={0: "a"}), {0: "b"})
    u21 = Modify("R", Pattern(1, eq={0: "b"}), {0: "a"})
    return db, UpdateLog(
        [Transaction("p", [u12 if i % 2 == 0 else u21 for i in range(n_queries)])]
    )


@pytest.mark.benchmark(group="blowup")
@pytest.mark.parametrize("policy", ["naive", "normal_form"])
def test_blowup_tracking_time(benchmark, scale, policy):
    db, log = alternating(scale.blowup_queries)

    def run():
        return series_run(db, log, policy, [scale.blowup_queries])

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.final().queries == scale.blowup_queries


@pytest.mark.benchmark(group="figures")
def test_blowup_series_shape(benchmark, scale, results_dir):
    (fig,) = benchmark.pedantic(figure_blowup, args=(scale,), rounds=1, iterations=1)
    save_figures([fig], results_dir)
    naive = [row["naive expanded size"] for row in fig.rows]
    nf = [row["nf expanded size"] for row in fig.rows]
    # Exponential: each two-query step multiplies the size by > 1.5.
    for a, b in zip(naive, naive[1:]):
        assert b > 1.5 * a
    # Theorem 5.3: flat.
    assert max(nf) == min(nf)
