"""Benchmark suite package.

The benchmark modules import shared helpers from :mod:`benchmarks.conftest`
via relative imports; this ``__init__.py`` gives them the package context
pytest needs to collect them with ``python -m pytest`` from the repo root.
"""
