"""Figure 8: provenance overhead and usage on the synthetic dataset."""

import random

import pytest

from repro.bench.figures import figure_8
from repro.bench.measure import usage_measurement
from repro.engine.engine import Engine

from .conftest import save_figures


def replay(database, log, policy):
    engine = Engine(database, policy=policy)
    engine.apply(log)
    return engine


@pytest.mark.benchmark(group="fig8b-runtime")
@pytest.mark.parametrize("policy", ["none", "naive", "normal_form"])
def test_fig8b_runtime(benchmark, synthetic, policy):
    _config, database, log = synthetic
    single = log.as_single_transaction()
    engine = benchmark.pedantic(replay, args=(database, single, policy), rounds=3, iterations=1)
    assert engine.live_count() > 0


@pytest.mark.benchmark(group="fig8c-usage")
@pytest.mark.parametrize("policy", ["naive", "normal_form"])
def test_fig8c_usage_valuation(benchmark, synthetic, scale, policy):
    _config, database, log = synthetic
    single = log.as_single_transaction()
    engine = replay(database, single, policy)

    def valuation():
        return usage_measurement(
            engine,
            database,
            single,
            n_deletions=scale.usage_deletions,
            rng=random.Random(99),
            verify=False,
        )

    measurement = benchmark.pedantic(valuation, rounds=3, iterations=1)
    assert measurement.usage_time >= 0


@pytest.mark.benchmark(group="fig8c-usage")
def test_fig8c_rerun_baseline(benchmark, synthetic):
    _config, database, log = synthetic
    single = log.as_single_transaction()

    def rerun():
        return Engine(database, policy="none").apply(single).result()

    result = benchmark.pedantic(rerun, rounds=3, iterations=1)
    assert result.total_rows() > 0


@pytest.mark.benchmark(group="figures")
def test_fig8_series_shapes(benchmark, scale, results_dir):
    figures = benchmark.pedantic(figure_8, args=(scale,), rounds=1, iterations=1)
    save_figures(figures, results_dir)
    fig8a, fig8b, fig8c = figures

    final = fig8a.rows[-1]
    assert final["naive stored nodes"] > final["nf stored nodes"]
    assert final["naive expanded size"] > final["nf expanded size"]
    # NF memory roughly flat once the affected set saturates; naive grows.
    naive_growth = fig8a.rows[-1]["naive expanded size"] / max(
        fig8a.rows[0]["naive expanded size"], 1
    )
    nf_growth = fig8a.rows[-1]["nf expanded size"] / max(fig8a.rows[0]["nf expanded size"], 1)
    assert naive_growth > nf_growth

    final_b = fig8b.rows[-1]
    assert final_b["no provenance [s]"] <= final_b["no axioms [s]"] * 1.25

    assert all(row["consistent"] for row in fig8c.rows)
    # Normal-form usage at the final checkpoint at least matches naive.
    assert fig8c.rows[-1]["nf usage [s]"] <= fig8c.rows[-1]["naive usage [s]"] * 1.5
